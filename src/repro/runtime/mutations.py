"""Seeded schedule mutations — the sanitizer's test harness.

Each mutator takes a known-good :class:`RegionSchedule` and returns a
*deep-copied* schedule with exactly one structural bug planted, of the
kind the sanitizer (:mod:`repro.runtime.sanitizer`) must catch:

* :func:`drop_action` — delete one action from one task: a
  tessellation **gap** (some points never advance past step ``t``) and
  usually a downstream **missing-dependence** hole;
* :func:`shift_region` — translate one action's rectangle by one cell
  along one axis: simultaneously a gap and a **double-write** (or an
  **out-of-bounds** write when it crosses the domain edge);
* :func:`merge_groups` — renumber barrier group ``g+1`` into ``g``:
  tasks that were dependence-ordered now run concurrently, an
  intra-group **race** (and/or missing dependence, since the merged
  producers no longer commit before the consumers read).

The CLI's ``--mutate kind@group[/task]`` flag (mirroring the fault
injector's ``--inject`` syntax) parses to these via
:func:`apply_mutation`; the fourth seeded-bug kind of the issue — an
undersized ghost band — lives on the distributed path (``dist
--ghost N --sanitize``), not here, because ghost width is an executor
parameter rather than schedule structure.

Mutators never modify their input: schedules are shared between the
clean and mutated halves of every A/B test.
"""

from __future__ import annotations

import copy
import re

from repro.runtime.schedule import RegionSchedule

#: mutation kinds accepted by :func:`apply_mutation`
MUTATION_KINDS = ("drop-action", "shift-region", "merge-groups")


def _copy_schedule(schedule: RegionSchedule) -> RegionSchedule:
    return copy.deepcopy(schedule)


def _pick_task(schedule: RegionSchedule, group: int, task: int):
    tasks = [t for t in schedule.tasks if t.group == group]
    if not tasks:
        raise ValueError(
            f"no tasks in barrier group {group} "
            f"(schedule has {schedule.num_groups} group(s))"
        )
    if not 0 <= task < len(tasks):
        raise ValueError(
            f"task index {task} out of range for group {group} "
            f"({len(tasks)} task(s))"
        )
    return tasks[task]


def drop_action(schedule: RegionSchedule, group: int = 0, task: int = 0,
                action: int = -1) -> RegionSchedule:
    """Delete one action of one task (default: the task's last)."""
    mutated = _copy_schedule(schedule)
    tgt = _pick_task(mutated, group, task)
    if not tgt.actions:
        raise ValueError(f"task {tgt.label!r} has no actions to drop")
    del tgt.actions[action]
    return mutated


def shift_region(schedule: RegionSchedule, group: int = 0, task: int = 0,
                 action: int = 0, axis: int = 0,
                 delta: int = 1) -> RegionSchedule:
    """Translate one action's region by ``delta`` cells along ``axis``."""
    mutated = _copy_schedule(schedule)
    tgt = _pick_task(mutated, group, task)
    if not tgt.actions:
        raise ValueError(f"task {tgt.label!r} has no actions to shift")
    a = tgt.actions[action]
    if not 0 <= axis < len(a.region):
        raise ValueError(f"axis {axis} out of range for rank {len(a.region)}")
    region = tuple(
        (lo + delta, hi + delta) if j == axis else (lo, hi)
        for j, (lo, hi) in enumerate(a.region)
    )
    tgt.actions[action] = type(a)(t=a.t, region=region)
    return mutated


def merge_groups(schedule: RegionSchedule, group: int = 0) -> RegionSchedule:
    """Collapse barrier group ``group + 1`` into ``group``.

    Every task of every later group slides down by one, removing the
    barrier between ``group`` and its successor.
    """
    mutated = _copy_schedule(schedule)
    gids = sorted({t.group for t in mutated.tasks})
    if group not in gids:
        raise ValueError(f"no barrier group {group} in schedule")
    later = [g for g in gids if g > group]
    if not later:
        raise ValueError(
            f"group {group} is the last barrier group; nothing to merge"
        )
    for t in mutated.tasks:
        if t.group > group:
            t.group -= 1
    return mutated


_SPEC_RE = re.compile(r"^(?P<kind>[a-z-]+)@(?P<group>\d+)(?:/(?P<task>\d+))?$")


def apply_mutation(schedule: RegionSchedule, spec: str) -> RegionSchedule:
    """Apply a ``kind@group[/task]`` mutation spec to a schedule copy.

    Mirrors the fault injector's ``--inject kind@group[/task]`` syntax;
    ``kind`` is one of :data:`MUTATION_KINDS`.
    """
    m = _SPEC_RE.match(spec.strip())
    if m is None:
        raise ValueError(
            f"bad mutation spec {spec!r}; expected kind@group[/task] with "
            f"kind in {MUTATION_KINDS}"
        )
    kind = m.group("kind")
    group = int(m.group("group"))
    task = int(m.group("task") or 0)
    if kind == "drop-action":
        return drop_action(schedule, group=group, task=task)
    if kind == "shift-region":
        return shift_region(schedule, group=group, task=task)
    if kind == "merge-groups":
        return merge_groups(schedule, group=group)
    raise ValueError(
        f"unknown mutation kind {kind!r}; expected one of {MUTATION_KINDS}"
    )
