"""Figure 11 — Heat-3D (star, with Girih) and 3d27p (box) vs cores.

Paper claims: on 3d7p, Girih and Pochoir are similar and Pluto is
slightly ahead at >20 cores; on 3d27p the tessellation clearly
outperforms Pluto and Pochoir (30%/99% average in the paper; the
headline abstract figure is +12% over the best competitor).
"""

from conftest import BENCH_CORES, render_result

from repro.bench.experiments import fig11_3d


def test_fig11(benchmark, capsys):
    results = benchmark.pedantic(
        fig11_3d, kwargs={"cores": BENCH_CORES}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_result(results))
    star, box = results
    # 3d7p: tess and pluto in the same band
    t, pl = star.at("tess", 24), star.at("pluto", 24)
    assert 0.75 <= t.gstencils / pl.gstencils <= 1.35
    # 3d27p: tess at least matches the best baseline
    t, pl, po = (box.at(s, 24) for s in ("tess", "pluto", "pochoir"))
    assert t.gstencils >= 0.95 * max(pl.gstencils, po.gstencils)
    assert t.gstencils > po.gstencils
