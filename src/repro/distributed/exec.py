"""Executable message-passing simulation of the distributed scheme.

Each rank holds its own pair of (full-size, for simplicity) ping-pong
arrays but only relies on values inside its slab plus a ghost band.
Execution follows the tessellation's stage structure:

1. every rank executes the blocks it owns (by base low corner);
2. at the stage barrier, neighbouring ranks exchange *boundary bands*:
   each rank sends the ghost-band-wide strip adjacent to its slab
   edges — both parity buffers, since a band's points sit at mixed
   time levels mid-phase.

The result is compared against the naive reference in the test-suite:
an under-sized band or a missing exchange makes the numerics diverge,
so the §4.1 communication plan is *validated*, not just asserted.
Message counts/bytes are tallied into :class:`CommStats`.

Fault tolerance (see ``docs/resilience.md``): the exchange consults an
optional :class:`~repro.runtime.faults.FaultPlan` — a ``drop`` fault
skips a rank's boundary-band send, a ``garble`` fault delivers NaN —
and a **divergence detector** cross-checks, after every stage, that
each neighbour pair agrees on every point either rank updated inside
their shared ``±ghost`` window (the induction invariant "arrays
correct on slab ⊕ ghost", checked where it is falsifiable).  Phase
boundaries are global consistency points — every rank's pair is
complete there — so with ``resilient=True`` the simulator snapshots
all ranks' buffers per phase and, on detected divergence, restores and
replays the phase (re-sending what a burned-out transient fault
dropped).  Replay is deterministic, so a recovered run is bit-identical
to a fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.profiles import TessLattice
from repro.distributed.partition import SlabPartition, build_ownership
from repro.runtime.errors import GhostDivergenceError
from repro.runtime.faults import FaultPlan
from repro.runtime.tracing import ExecutionTrace
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, region_is_empty


@dataclass
class CommStats:
    """Tally of the exchanges (and injected faults) of a distributed run.

    One schema for both execution paths: the in-process simulator
    (:func:`execute_distributed`) and the elastic multiprocess runtime
    (:func:`repro.distributed.elastic.execute_elastic`) fill the same
    counters, so reports and trace events compare like for like —
    counters a path cannot exercise simply stay zero.
    """

    messages: int = 0
    bytes_sent: int = 0
    stage_bytes: Dict[int, int] = field(default_factory=dict)
    #: exchanges skipped by injected ``drop`` faults
    drops: int = 0
    #: exchanges delivered as NaN by injected ``garble`` faults
    garbles: int = 0
    #: neighbour-pair consistency checks run by the detector
    divergence_checks: int = 0
    #: phases replayed from their checkpoint after a detection
    phase_restarts: int = 0
    #: receive timeouts observed while waiting for a boundary band
    timeouts: int = 0
    #: retransmit requests issued (after a timeout or a bad checksum)
    retries: int = 0
    #: CRC failures detected on received payloads
    checksum_failures: int = 0
    #: heartbeat messages the coordinator received
    heartbeats: int = 0
    #: rank processes respawned after a loss
    respawns: int = 0
    #: owned-block plan compilations reported by rank incarnations
    #: (each incarnation compiles exactly once, at startup — never
    #: per phase; see :class:`repro.distributed.worker._Worker`)
    plan_compiles: int = 0

    def record(self, stage_idx: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        self.stage_bytes[stage_idx] = (
            self.stage_bytes.get(stage_idx, 0) + nbytes
        )

    def merge_worker(self, other: Dict[str, int]) -> None:
        """Fold a worker-reported counter dict into this tally."""
        for key in ("drops", "garbles", "timeouts", "retries",
                    "checksum_failures", "plan_compiles"):
            setattr(self, key, getattr(self, key) + int(other.get(key, 0)))

    def describe_resilience(self) -> str:
        """One-line report of the failure/recovery counters."""
        return (
            f"drops={self.drops} garbles={self.garbles} "
            f"timeouts={self.timeouts} retries={self.retries} "
            f"checksum_failures={self.checksum_failures} "
            f"heartbeats={self.heartbeats} respawns={self.respawns} "
            f"phase_restarts={self.phase_restarts} "
            f"divergence_checks={self.divergence_checks}"
        )

    @property
    def had_faults(self) -> bool:
        return bool(self.drops or self.garbles or self.timeouts
                    or self.retries or self.checksum_failures
                    or self.respawns or self.phase_restarts)


def _execute_distributed(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    ranks: int,
    axis: int = 0,
    *,
    fault_plan: Optional[FaultPlan] = None,
    check_divergence: bool = False,
    resilient: bool = False,
    max_phase_restarts: int = 2,
    ghost_override: Optional[int] = None,
    trace: Optional[ExecutionTrace] = None,
    sanitize: bool = False,
    budget=None,
) -> Tuple[np.ndarray, CommStats]:
    """Rank simulation (the ``distributed`` backend's engine).

    Returns the assembled interior at time ``steps`` plus the
    communication statistics.  Dirichlet boundaries only (like the
    paper's evaluated configuration).

    ``fault_plan`` injects ``drop``/``garble`` exchange faults
    (addressed by global stage counter, ``task`` = source rank);
    ``check_divergence`` runs the neighbour-consistency detector after
    every stage; ``resilient`` additionally checkpoints each phase and
    replays it on detection (up to ``max_phase_restarts`` times per
    phase) instead of raising.  ``ghost_override`` forces a band width
    different from the lattice-derived one — the detector always
    validates against the *required* width, which is how an under-sized
    band is caught instead of silently corrupting the run.
    ``sanitize`` runs the ghost-band-aware structural sanitizer
    (:func:`repro.runtime.sanitizer.sanitize_distributed_plan`) as a
    pre-flight, catching an under-sized ``ghost_override`` *before*
    execution rather than via numeric divergence.
    """
    if spec.is_periodic:
        raise ValueError("distributed executor assumes Dirichlet boundaries")
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if sanitize:
        from repro.runtime.sanitizer import sanitize_distributed_plan

        san = sanitize_distributed_plan(spec, lattice, steps, ranks,
                                        axis=axis, ghost=ghost_override)
        if trace is not None:
            trace.record_event("sanitize", 0, seconds=san.seconds,
                               detail=f"{len(san.violations)} violation(s), "
                                      f"{san.actions_checked} action(s)")
            for v in san.violations:
                trace.record_event(
                    "violation", v.group if v.group is not None else -1,
                    label=v.task or "", detail=v.describe(),
                )
        san.raise_if_violations()
    if resilient:
        check_divergence = True
    part = SlabPartition(grid.shape, ranks, axis=axis)
    slopes = tuple(p.sigma for p in lattice.profiles)
    b = lattice.b
    ghost_required = part.ghost_width(lattice)
    ghost = ghost_required if ghost_override is None else int(ghost_override)
    bounds = part.bounds()
    itemsize = np.dtype(spec.dtype).itemsize

    # per-rank replicas of the ping-pong pair
    locals_: List[List[np.ndarray]] = [
        [buf.copy() for buf in grid.buffers] for _ in range(ranks)
    ]
    # block ownership, fixed across phases (shared definition)
    plan, owned = build_ownership(lattice, part)
    stats = CommStats()
    interior = spec.interior_slices(grid.shape)
    n_axis = grid.shape[axis]

    def _axis_window(lo: int, hi: int) -> Tuple[slice, ...]:
        window = [slice(None)] * len(grid.shape)
        window[axis] = slice(max(0, lo), min(n_axis, hi))
        return tuple(window)

    def exchange(stage_idx: int, dirty: List[np.ndarray]) -> None:
        """Writers push their fresh points to neighbours.

        Per stage, every grid point is updated by at most one block
        (the tessellation's uniqueness property), so each rank's dirty
        mask identifies the values it is authoritative for; copying
        those — both parity buffers, the pair a block leaves behind —
        to neighbours whose ghost range covers them restores the
        induction invariant (arrays correct on slab ⊕ ghost).  Blocks
        of different stage families overlap in axis extent with
        different owners for d ≥ 2, which is why dirtiness is tracked
        per point, not per axis line.
        """
        for src in range(ranks):
            fault, probed = None, False
            for dst in (src - 1, src + 1):
                if not 0 <= dst < ranks:
                    continue
                dlo, dhi = bounds[dst]
                window = _axis_window(dlo - ghost, dhi + ghost)
                mask = dirty[src][window]
                pts = int(mask.sum())
                if pts == 0:
                    continue
                if fault_plan is not None and not probed:
                    # probe lazily so a fault only burns a hit when a
                    # transfer was actually due from this source rank
                    fault = fault_plan.exchange_fault(stage_idx, src)
                    probed = True
                if fault is not None and fault.kind == "drop":
                    stats.drops += 1
                    if trace is not None:
                        trace.record_event(
                            "exchange-fault", stage_idx,
                            detail=f"drop {src}->{dst}")
                    continue
                for parity in (0, 1):
                    src_int = locals_[src][parity][interior][window]
                    dst_int = locals_[dst][parity][interior][window]
                    if fault is not None and fault.kind == "garble":
                        if np.issubdtype(spec.dtype, np.integer):
                            # ints cannot hold NaN; deliver off-by-one
                            # garbage the detector can still flag
                            np.copyto(dst_int, src_int + 1, where=mask)
                        else:
                            np.copyto(dst_int, np.nan, where=mask)
                    else:
                        np.copyto(dst_int, src_int, where=mask)
                if fault is not None and fault.kind == "garble":
                    stats.garbles += 1
                    if trace is not None:
                        trace.record_event(
                            "exchange-fault", stage_idx,
                            detail=f"garble {src}->{dst}")
                stats.record(stage_idx, 2 * pts * itemsize)

    def detect_divergence(stage_idx: int, dirty: List[np.ndarray]) -> None:
        """Cross-check neighbour pairs on their shared boundary window.

        After a correct exchange, ranks ``r`` and ``r+1`` must agree on
        every point *either* of them updated this stage inside the
        ``±ghost_required`` window around their boundary: the updater
        is authoritative and the window lies inside both receive
        ranges.  Points updated by other ranks are excluded (they are
        legitimately unknown to one side).  The required — not the
        effective — band width is used, so an under-sized
        ``ghost_override`` is caught here rather than silently
        corrupting downstream phases.
        """
        for r in range(ranks - 1):
            hi = bounds[r][1]
            window = _axis_window(hi - ghost_required, hi + ghost_required)
            mask = dirty[r][window] | dirty[r + 1][window]
            stats.divergence_checks += 1
            if not mask.any():
                continue
            bad = 0
            for parity in (0, 1):
                a = locals_[r][parity][interior][window]
                c = locals_[r + 1][parity][interior][window]
                # exchanged copies are bitwise-identical, so exact
                # inequality is the right test; NaN != NaN also flags
                # garbled payloads
                bad += int(((a != c) & mask).sum())
            if bad:
                raise GhostDivergenceError(stage_idx, r, r + 1, bad)

    from repro.api.driver import phase_windows

    if budget is not None:
        budget.check("distributed entry")
    stage_counter = 0
    for tt, span in phase_windows(0, steps, b):
        if budget is not None:
            budget.check(f"phase t={tt}")
        phase_ckpt = (
            [[buf.copy() for buf in bufs] for bufs in locals_]
            if resilient else None
        )
        attempts = 0
        while True:
            try:
                for si, sp in enumerate(plan.stages):
                    stage_idx = stage_counter + si
                    if budget is not None:
                        budget.check(f"stage {stage_idx}")
                    dirty = [np.zeros(grid.shape, dtype=bool)
                             for _ in range(ranks)]
                    for r in range(ranks):
                        bufs = locals_[r]
                        for blk in owned[r][si]:
                            for s in range(span):
                                region = blk.region_at(s, b, slopes,
                                                       grid.shape)
                                if region_is_empty(region):
                                    continue
                                spec.apply_region(
                                    bufs[(tt + s) % 2],
                                    bufs[(tt + s + 1) % 2],
                                    region,
                                )
                                idx = tuple(slice(lo, hi)
                                            for lo, hi in region)
                                dirty[r][idx] = True
                    exchange(stage_idx, dirty)
                    if check_divergence:
                        detect_divergence(stage_idx, dirty)
                break
            except GhostDivergenceError:
                attempts += 1
                if not resilient or attempts > max_phase_restarts:
                    raise
                for r in range(ranks):
                    for parity in (0, 1):
                        np.copyto(locals_[r][parity],
                                  phase_ckpt[r][parity])
                stats.phase_restarts += 1
                if trace is not None:
                    trace.record_event(
                        "restore", stage_counter,
                        detail=f"phase replay at t={tt} "
                               f"(attempt {attempts + 1})")
        stage_counter += len(plan.stages)

    # assemble: each rank contributes its own slab at the final time
    out = np.zeros(grid.shape, dtype=spec.dtype)
    for r, (lo, hi) in enumerate(bounds):
        sl = [slice(None)] * len(grid.shape)
        sl[axis] = slice(lo, hi)
        out[tuple(sl)] = locals_[r][steps % 2][interior][tuple(sl)]
    return out, stats


def execute_distributed(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    ranks: int,
    axis: int = 0,
    *,
    fault_plan: Optional[FaultPlan] = None,
    check_divergence: bool = False,
    resilient: bool = False,
    max_phase_restarts: int = 2,
    ghost_override: Optional[int] = None,
    trace: Optional[ExecutionTrace] = None,
    sanitize: bool = False,
) -> Tuple[np.ndarray, CommStats]:
    """Run ``steps`` tessellated steps across ``ranks`` simulated ranks.

    Returns ``(assembled interior at time steps, CommStats)``.

    .. deprecated:: use ``repro.api.run`` / ``Session.execute`` with
       ``backend="distributed"`` instead.
    """
    from repro.api import RunConfig, Session, warn_legacy
    from repro.runtime.resilience import ResiliencePolicy

    warn_legacy("execute_distributed",
                "repro.api.run(backend='distributed')")
    config = RunConfig(
        backend="distributed", engine="naive", scheme="tess",
        steps=steps, ranks=ranks, axis=axis, fault_plan=fault_plan,
        check_divergence=check_divergence,
        resilience=ResiliencePolicy() if resilient else None,
        max_phase_restarts=max_phase_restarts, ghost=ghost_override,
        trace=trace, sanitize=sanitize,
    )
    result = Session(spec).execute(grid, config=config, lattice=lattice)
    return result.interior, result.stats.comm
