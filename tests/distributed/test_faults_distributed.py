"""Fault injection and recovery in the distributed simulator.

Exercises the ISSUE 1 distributed acceptance path: dropped/garbled
ghost-band exchanges are *detected* by the neighbour-consistency
(divergence) detector, and with ``resilient=True`` are *repaired* by
phase checkpoint/replay to results bit-identical to a fault-free run.
An under-sized ghost band — which silently corrupts the numerics
without the detector — is caught instead.
"""

import numpy as np
import pytest

from repro import Grid, get_stencil, make_lattice, reference_sweep
from repro.distributed.exec import _execute_distributed
from repro.runtime import FaultPlan, FaultSpec, GhostDivergenceError

pytestmark = pytest.mark.faults


def _setup(kernel="heat1d", shape=(400,), steps=16, b=4, ranks=4):
    spec = get_stencil(kernel)
    lat = make_lattice(spec, shape, b)
    grid = Grid(spec, shape, seed=0)
    ref = reference_sweep(spec, grid.copy(), steps)
    base, _ = _execute_distributed(spec, grid.copy(), lat, steps, ranks)
    return spec, lat, grid, ref, base


class TestDivergenceDetector:
    def test_clean_run_no_false_positives_1d(self):
        spec, lat, grid, ref, base = _setup()
        out, stats = _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                         check_divergence=True)
        assert np.array_equal(base, out)
        assert stats.divergence_checks > 0

    @pytest.mark.parametrize("kernel,shape,steps,b,ranks", [
        ("heat2d", (64, 64), 12, 4, 3),
        ("life", (48, 48), 8, 2, 3),
    ])
    def test_clean_run_no_false_positives_nd(self, kernel, shape, steps,
                                             b, ranks):
        spec, lat, grid, ref, base = _setup(kernel, shape, steps, b, ranks)
        out, stats = _execute_distributed(spec, grid.copy(), lat, steps,
                                         ranks, check_divergence=True)
        assert np.array_equal(base, out)

    def test_dropped_exchange_detected(self):
        spec, lat, grid, ref, base = _setup()
        plan = FaultPlan([FaultSpec("drop", group=2, task=1)])
        with pytest.raises(GhostDivergenceError) as ei:
            _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                fault_plan=plan, check_divergence=True)
        assert ei.value.stage == 2
        assert ei.value.mismatched_points > 0

    def test_garbled_exchange_detected(self):
        spec, lat, grid, ref, base = _setup()
        plan = FaultPlan([FaultSpec("garble", group=1, task=0)])
        with pytest.raises(GhostDivergenceError):
            _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                fault_plan=plan, check_divergence=True)

    def test_undersized_ghost_band_caught_not_silent(self):
        """The ISSUE satellite: an under-sized band must be *caught*.

        Without the detector the run completes with silently wrong
        numerics; the detector validates against the lattice-required
        band width, so the same run raises instead.
        """
        spec, lat, grid, ref, base = _setup()
        out, _ = _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                     ghost_override=1)
        assert not np.allclose(ref, out, rtol=1e-11, atol=1e-12)
        with pytest.raises(GhostDivergenceError):
            _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                ghost_override=1, check_divergence=True)

    def test_integer_kernel_garble_detected(self):
        spec, lat, grid, ref, base = _setup("life", (48, 48), 8, 2, 3)
        plan = FaultPlan([FaultSpec("garble", group=1, task=0)])
        with pytest.raises(GhostDivergenceError):
            _execute_distributed(spec, grid.copy(), lat, 8, 3,
                                fault_plan=plan, check_divergence=True)


class TestPhaseRecovery:
    def test_dropped_exchange_recovers_bit_identical(self):
        spec, lat, grid, ref, base = _setup()
        plan = FaultPlan([FaultSpec("drop", group=2, task=1)])
        out, stats = _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                         fault_plan=plan, resilient=True)
        assert np.array_equal(base, out)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)
        assert stats.drops >= 1
        assert stats.phase_restarts == 1

    def test_garbled_exchange_recovers_bit_identical(self):
        spec, lat, grid, ref, base = _setup()
        plan = FaultPlan([FaultSpec("garble", group=5, task=2)])
        out, stats = _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                         fault_plan=plan, resilient=True)
        assert np.array_equal(base, out)
        assert stats.garbles >= 1
        assert stats.phase_restarts == 1

    def test_multiple_transient_drops_recover(self):
        spec, lat, grid, ref, base = _setup()
        plan = FaultPlan([FaultSpec("drop", group=g, task=g % 3)
                          for g in (1, 4, 9)])
        out, stats = _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                         fault_plan=plan, resilient=True)
        assert np.array_equal(base, out)
        assert stats.phase_restarts >= 1

    def test_recovery_in_2d(self):
        spec, lat, grid, ref, base = _setup("heat2d", (64, 64), 12, 4, 3)
        plan = FaultPlan([FaultSpec("drop", group=3, task=1)])
        out, stats = _execute_distributed(spec, grid.copy(), lat, 12, 3,
                                         fault_plan=plan, resilient=True)
        assert np.array_equal(base, out)
        assert stats.phase_restarts >= 1

    def test_persistent_drop_exhausts_restarts(self):
        spec, lat, grid, ref, base = _setup()
        plan = FaultPlan([FaultSpec("drop", group=2, task=1,
                                    max_hits=10_000)])
        with pytest.raises(GhostDivergenceError):
            _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                fault_plan=plan, resilient=True,
                                max_phase_restarts=2)

    def test_fault_free_resilient_identical(self):
        spec, lat, grid, ref, base = _setup()
        out, stats = _execute_distributed(spec, grid.copy(), lat, 16, 4,
                                         resilient=True)
        assert np.array_equal(base, out)
        assert stats.phase_restarts == 0
