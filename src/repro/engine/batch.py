"""Batch axis for compiled plans: one plan over N stacked instances.

The serving workload is many *small/medium* independent problem
instances of the same ``(spec, shape, steps, scheme)`` — exactly the
regime where a compiled plan's remaining cost is Python dispatch per
unit, not math (a fig8-class plan is ~32 units covering ~16k actions
for under a millisecond of arithmetic).  This module amortises that
dispatch across the *instance* axis: N grids are stacked into one
``[N, *padded]`` ping-pong pair and every plan unit applies to all N
instances in a single NumPy call (``run_batched`` on the units in
:mod:`repro.engine.plan`; the instance-level analogue of temporal
vectorization, arXiv 2010.04868 / 2103.08825).

Bit-identity is preserved by construction: slice units gain a leading
``slice(None)`` (same per-element float sequence, wider arrays), flat
batch units gather with ``axis=1`` over ``[N, P]`` views (elementwise
arithmetic is layout-independent).  The plan itself is untouched — the
cache key stays independent of N, so one compile serves any batch
width.

Plans the batched lowering cannot prove safe are refused by
:func:`plan_supports_batch`: ghost-zone (private-task) plans snapshot
per-task boxes whose geometry has no batch form, and generic-operator
plans call ``spec.operator.apply`` which only knows single-instance
buffers.  The ``batched`` backend surfaces the refusal as a typed
:class:`~repro.api.backends.BackendUnsupported` before any buffer is
touched.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.kernels import ScratchArena, thread_arena
from repro.engine.plan import CompiledPlan
from repro.stencils.grid import Grid
from repro.stencils.operators import (
    GameOfLifeOperator,
    LinearStencilOperator,
)
from repro.stencils.spec import StencilSpec
from repro.stencils.staged import StagedOperator

__all__ = [
    "BatchGrid",
    "plan_supports_batch",
    "stack_grids",
]


class BatchGrid:
    """N stacked ping-pong pairs: ``buffers[p][i]`` is instance ``i``'s
    padded buffer at parity ``p``.

    The stacked buffers are C-contiguous ``[N, *padded]`` arrays, so a
    plan unit's slice prefixed with ``slice(None)`` (or an ``axis=1``
    flat gather over the ``[N, P]`` view) touches every instance in one
    kernel call.
    """

    __slots__ = ("spec", "shape", "n", "buffers")

    def __init__(self, spec: StencilSpec, shape: Sequence[int],
                 buffers: List[np.ndarray]):
        self.spec = spec
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.n = int(buffers[0].shape[0])
        self.buffers = buffers

    def at(self, t: int) -> np.ndarray:
        """Stacked padded buffers holding values at global time ``t``."""
        return self.buffers[t % 2]

    def interior(self, t: int) -> np.ndarray:
        """``[N, *shape]`` interior view at global time ``t``."""
        return self.at(t)[(slice(None),)
                          + self.spec.interior_slices(self.shape)]

    def instance_interior(self, i: int, t: int) -> np.ndarray:
        return self.at(t)[(i,) + self.spec.interior_slices(self.shape)]

    def scatter(self, grids: Sequence[Grid]) -> None:
        """Copy both parities back into the member grids' own buffers."""
        if len(grids) != self.n:
            raise ValueError(
                f"batch holds {self.n} instances, got {len(grids)} grids"
            )
        for p in (0, 1):
            stacked = self.buffers[p]
            for i, grid in enumerate(grids):
                np.copyto(grid.buffers[p], stacked[i])


def stack_grids(spec: StencilSpec, grids: Sequence[Grid]) -> BatchGrid:
    """Stack N member grids into one :class:`BatchGrid` (copies)."""
    if not grids:
        raise ValueError("cannot stack an empty grid list")
    shape = grids[0].shape
    for g in grids:
        if g.shape != shape:
            raise ValueError(
                f"batch members must share one shape; got {g.shape} "
                f"and {shape}"
            )
        if g.spec.dtype != spec.dtype:
            raise ValueError("batch members must share the spec dtype")
    buffers = [
        np.stack([g.buffers[p] for g in grids], axis=0) for p in (0, 1)
    ]
    return BatchGrid(spec, shape, buffers)


def plan_supports_batch(plan: CompiledPlan) -> Optional[str]:
    """Refusal reason when a plan has no batched lowering, else None."""
    if plan.private:
        return ("ghost-zone (private-task) plans have no batched "
                "lowering; run instances individually")
    op = plan.spec.operator
    if not (isinstance(op, GameOfLifeOperator)
            or type(op) is LinearStencilOperator
            or isinstance(op, StagedOperator)):
        return (f"operator {type(op).__name__} has no batched kernel; "
                f"only linear, Game-of-Life and staged operators are "
                f"batchable")
    return None


def _execute_plan_batched(plan: CompiledPlan, bgrid: BatchGrid,
                          arena: Optional[ScratchArena] = None,
                          budget=None) -> np.ndarray:
    """Run one compiled plan over all stacked instances at once.

    Mirrors :func:`repro.engine.plan._execute_plan` — same budget
    checkpoints at entry and between group streams — but dispatches
    each unit once for the whole batch.  Returns the ``[N, *shape]``
    interior at the plan's final step.
    """
    reason = plan_supports_batch(plan)
    if reason is not None:
        raise ValueError(f"plan cannot run batched: {reason}")
    if bgrid.shape != plan.shape:
        raise ValueError(
            f"batch shape {bgrid.shape} != plan shape {plan.shape}"
        )
    bufs = bgrid.buffers
    if not all(b.flags.c_contiguous for b in bufs):
        raise ValueError("batched plans require C-contiguous buffers")
    n = bgrid.n
    flats = (bufs[0].reshape(n, -1), bufs[1].reshape(n, -1))
    spec = plan.spec
    if arena is None:
        arena = thread_arena()
    if budget is not None:
        budget.check(f"{plan.scheme} batched plan entry")
    for si, stream in enumerate(plan.streams):
        if budget is not None:
            budget.check(f"batched stream {si}")
        for unit in stream:
            unit.run_batched(bufs, flats, spec, arena)
    return bgrid.interior(plan.steps)
