"""Validation matrix — every scheme against every paper kernel.

The safety net behind the whole evaluation: 9 schedule generators x 7
kernels, each verified against the naive sweep (bit-level for the
integer Game of Life).
"""

from repro.bench.experiments import validation_matrix


def test_validation_matrix(benchmark, capsys):
    out = benchmark.pedantic(validation_matrix, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[validation] scheme x kernel:")
        print(out)
    assert "FAIL" not in out
