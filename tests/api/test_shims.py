"""Deprecation shims: the eight legacy entry points still work.

Each historical entry point (``run_blocked``, ``run_merged``,
``execute_schedule``, ``execute_threaded``, ``execute_resilient``,
``execute_plan``, ``execute_distributed``, ``execute_elastic``) must

* emit **exactly one** :class:`DeprecationWarning` per call, pointing
  at the caller (``stacklevel``), and
* return results **bit-identical** to the private implementation it
  wraps (the shim routes through ``Session.execute``; any drift there
  is a facade bug).

This file is the *only* place in the suite allowed to call the legacy
names — CI runs every other test under ``-W error::DeprecationWarning``.
"""

import warnings

import numpy as np
import pytest

from repro.core import make_lattice
from repro.core.executor import _run_blocked, _run_merged, run_blocked, run_merged
from repro.core.schedules import tess_schedule
from repro.distributed.exec import _execute_distributed, execute_distributed
from repro.engine.plan import _execute_plan, compile_plan, execute_plan
from repro.runtime.resilience import _execute_resilient, execute_resilient
from repro.runtime.schedule import _execute_schedule, execute_schedule
from repro.runtime.threadpool import _execute_threaded, execute_threaded
from repro.stencils import Grid, heat1d, heat2d

pytestmark = pytest.mark.api

SHAPE = (40, 36)
STEPS = 8
B = 4


def _artifacts(spec=None, shape=SHAPE, steps=STEPS):
    spec = spec or heat2d()
    lattice = make_lattice(spec, shape, B)
    schedule = tess_schedule(spec, shape, lattice, steps)
    return spec, lattice, schedule


def _call_with_one_warning(fn, *args, **kwargs):
    """Call fn, assert exactly one DeprecationWarning, return result."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"{fn.__name__} emitted {len(deprecations)} DeprecationWarnings, "
        f"expected exactly 1"
    )
    message = str(deprecations[0].message)
    assert fn.__name__ in message
    assert "repro.api" in message
    return result


def test_execute_schedule_shim():
    spec, _, schedule = _artifacts()
    ref = _execute_schedule(spec, Grid(spec, SHAPE, seed=0), schedule)
    out = _call_with_one_warning(
        execute_schedule, spec, Grid(spec, SHAPE, seed=0), schedule)
    assert np.array_equal(ref, out)


def test_execute_threaded_shim():
    spec, _, schedule = _artifacts()
    ref = _execute_threaded(spec, Grid(spec, SHAPE, seed=0), schedule,
                            num_threads=2)
    out = _call_with_one_warning(
        execute_threaded, spec, Grid(spec, SHAPE, seed=0), schedule,
        num_threads=2)
    assert np.array_equal(ref, out)


def test_execute_resilient_shim():
    from repro.runtime.resilience import ResilienceReport

    spec, _, schedule = _artifacts()
    ref, _ = _execute_resilient(spec, Grid(spec, SHAPE, seed=0), schedule)
    out, report = _call_with_one_warning(
        execute_resilient, spec, Grid(spec, SHAPE, seed=0), schedule)
    assert np.array_equal(ref, out)
    assert isinstance(report, ResilienceReport)


def test_execute_plan_shim():
    spec, _, schedule = _artifacts()
    plan = compile_plan(spec, schedule)
    ref = _execute_plan(plan, Grid(spec, SHAPE, seed=0))
    out = _call_with_one_warning(execute_plan, plan, Grid(spec, SHAPE, seed=0))
    assert np.array_equal(ref, out)


def test_run_blocked_shim():
    spec, lattice, _ = _artifacts()
    ref = _run_blocked(spec, Grid(spec, SHAPE, seed=0), lattice, STEPS)
    out = _call_with_one_warning(
        run_blocked, spec, Grid(spec, SHAPE, seed=0), lattice, STEPS)
    assert np.array_equal(ref, out)


def test_run_merged_shim():
    spec, lattice, _ = _artifacts()
    ref = _run_merged(spec, Grid(spec, SHAPE, seed=0), lattice, STEPS)
    out = _call_with_one_warning(
        run_merged, spec, Grid(spec, SHAPE, seed=0), lattice, STEPS)
    assert np.array_equal(ref, out)


def test_execute_distributed_shim():
    spec = heat1d()
    shape = (200,)
    lattice = make_lattice(spec, shape, B)
    ref, ref_stats = _execute_distributed(
        spec, Grid(spec, shape, seed=0), lattice, STEPS, 4)
    out, stats = _call_with_one_warning(
        execute_distributed, spec, Grid(spec, shape, seed=0), lattice,
        STEPS, 4)
    assert np.array_equal(ref, out)
    assert stats.messages == ref_stats.messages
    assert stats.bytes_sent == ref_stats.bytes_sent


@pytest.mark.dist
def test_execute_elastic_shim():
    from repro.distributed.elastic import _execute_elastic, execute_elastic

    spec = heat1d()
    shape = (200,)
    lattice = make_lattice(spec, shape, B)
    ref, _ = _execute_elastic(
        spec, Grid(spec, shape, seed=0), lattice, STEPS, 2)
    out, stats = _call_with_one_warning(
        execute_elastic, spec, Grid(spec, shape, seed=0), lattice,
        STEPS, 2)
    assert np.array_equal(ref, out)
    assert stats.messages > 0


def test_shim_warning_points_at_caller():
    """stacklevel: the warning must be attributed to this file, not to
    the shim's module or the deprecation helper."""
    spec, _, schedule = _artifacts(shape=(16, 16), steps=4)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        execute_schedule(spec, Grid(spec, (16, 16), seed=0), schedule)
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert dep[0].filename == __file__
