"""Elastic process-runtime overhead (ISSUE 4).

Measures what real rank processes cost over the in-process simulator
on the fault-free path, and what one mid-run rank kill adds on top.
Not a paper figure; this quantifies the engineering trade-off recorded
in ``docs/distributed.md``: process spawn + pickled pipe traffic +
per-phase checkpoint spills buy crash survival, and recovery must cost
roughly one replayed phase — not a from-scratch rerun.
"""

import time

import numpy as np
import pytest

from repro import Grid, get_stencil, make_lattice, reference_sweep
from repro.distributed import ElasticConfig
from repro.distributed.exec import _execute_distributed
from repro.distributed.elastic import _execute_elastic
from repro.runtime import FaultPlan, FaultSpec

pytestmark = pytest.mark.dist

B = 4
STEPS = 16
SHAPE = (2000,)
RANKS = 4

#: recovery timings tightened so the kill benchmark converges quickly
FAST = ElasticConfig(stall_timeout_s=0.6, heartbeat_timeout_s=1.5,
                     deadline_s=120.0)


def _build():
    spec = get_stencil("heat1d")
    lat = make_lattice(spec, SHAPE, B)
    return spec, lat


def test_elastic_vs_simulator_overhead(benchmark, capsys):
    """Points/sec: simulator vs process runtime vs one healed kill."""
    spec, lat = _build()
    points = int(np.prod(SHAPE)) * STEPS
    ref = reference_sweep(spec, Grid(spec, SHAPE, seed=0), STEPS)

    def timed(fn):
        grid = Grid(spec, SHAPE, seed=0)
        t0 = time.perf_counter()
        out, stats = fn(grid)
        return time.perf_counter() - t0, out, stats

    sim_s, sim_out, _ = benchmark.pedantic(
        lambda: timed(lambda g: _execute_distributed(
            spec, g, lat, STEPS, RANKS)),
        rounds=1, iterations=1)
    ela_s, ela_out, ela_stats = timed(lambda g: _execute_elastic(
        spec, g, lat, STEPS, RANKS, config=FAST))
    kill_s, kill_out, kill_stats = timed(lambda g: _execute_elastic(
        spec, g, lat, STEPS, RANKS, config=FAST,
        fault_plan=FaultPlan([FaultSpec("kill_rank", group=3, task=1)])))

    with capsys.disabled():
        print("\n[elastic] process-runtime overhead, heat1d "
              f"n={SHAPE[0]} steps={STEPS} b={B} ranks={RANKS}:")
        print(f"  simulator    : {points / sim_s:12.0f} points/s")
        print(f"  elastic      : {points / ela_s:12.0f} points/s "
              f"({ela_stats.messages} msgs, {ela_stats.heartbeats} beats)")
        print(f"  elastic+kill : {points / kill_s:12.0f} points/s "
              f"({kill_stats.respawns} respawn, "
              f"{kill_stats.phase_restarts} phase restart)")

    # correctness first: every path is bit-identical to the reference
    assert np.array_equal(ref, sim_out)
    assert np.array_equal(ref, ela_out)
    assert np.array_equal(ref, kill_out)
    assert kill_stats.respawns == 1 and kill_stats.phase_restarts >= 1

    # the process runtime pays spawn + IPC, but must stay within an
    # order of magnitude of the simulator on a non-trivial run
    assert ela_s < 60.0 * max(sim_s, 0.05)
    # recovery replays committed state — one kill cannot cost more than
    # a handful of fault-free runs (it re-executes ~one phase, plus a
    # watchdog round trip and a respawn)
    assert kill_s < 5.0 * max(ela_s, 0.5)
