"""Fault-injection and recovery tests for the resilience layer.

The headline property (ISSUE 1 acceptance): a run with injected
transient faults plus checkpoint/restart recovery produces results
*bit-identical* to a fault-free run — for the tessellation and the
baselines — because every restart deterministically replays the same
region applications on restored state.
"""

import numpy as np
import pytest

from repro import Grid, get_stencil, make_lattice
from repro.baselines import diamond_schedule, naive_schedule
from repro.core.schedules import tess_schedule
from repro.runtime import (
    ExecutionError,
    FaultPlan,
    FaultSpec,
    GuardViolation,
    InjectedFault,
    ResiliencePolicy,
)
from repro.runtime.resilience import _execute_resilient
from repro.runtime.schedule import _execute_schedule
from repro.runtime.threadpool import _execute_threaded
from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.runtime.tracing import ExecutionTrace

pytestmark = pytest.mark.faults

SPEC = get_stencil("heat2d")
SHAPE = (40, 40)
STEPS = 12
B = 4


def _tess():
    lat = make_lattice(SPEC, SHAPE, B)
    return tess_schedule(SPEC, SHAPE, lat, STEPS, merged=True)


def _schedules():
    return {
        "tess": _tess(),
        "naive": naive_schedule(SPEC, SHAPE, STEPS, chunks=4),
        "diamond": diamond_schedule(SPEC, SHAPE, B, STEPS),
    }


@pytest.fixture(scope="module")
def schedules():
    return _schedules()


@pytest.fixture(scope="module")
def references(schedules):
    out = {}
    for name, sched in schedules.items():
        g = Grid(SPEC, SHAPE, seed=0)
        out[name] = _execute_schedule(SPEC, g, sched).copy()
    return out


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse(["crash@2", "corrupt@0/3", "drop@1x99"])
        assert [f.kind for f in plan.faults] == ["crash", "corrupt", "drop"]
        assert plan.faults[1].task == 3
        assert plan.faults[2].max_hits == 99

    @pytest.mark.parametrize("bad", ["boom@1", "crash", "crash@-1",
                                     "crash@1/2/3", "drop@"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse([bad])

    def test_random_is_deterministic(self):
        a = FaultPlan.random(20, rate=0.5, seed=7, max_task=3)
        b = FaultPlan.random(20, rate=0.5, seed=7, max_task=3)
        assert [f.describe() for f in a.faults] == \
               [f.describe() for f in b.faults]
        c = FaultPlan.random(20, rate=0.5, seed=8, max_task=3)
        assert [f.describe() for f in a.faults] != \
               [f.describe() for f in c.faults]

    def test_hits_burn_out_and_reset(self):
        plan = FaultPlan([FaultSpec("crash", group=0, task=0)])
        assert plan.crash_fault(0, 0) is not None
        assert plan.crash_fault(0, 0) is None  # transient: burned out
        plan.reset()
        assert plan.crash_fault(0, 0) is not None

    def test_wildcard_task_matches_any(self):
        plan = FaultPlan([FaultSpec("crash", group=1, task=None)])
        assert plan.crash_fault(1, 5) is not None

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("explode", group=0)


class TestRecoveryBitIdentical:
    """Seeded property-style sweep: transient faults recover exactly."""

    def test_fault_free_matches_sequential(self, schedules, references):
        for name, sched in schedules.items():
            g = Grid(SPEC, SHAPE, seed=0)
            out, report = _execute_resilient(SPEC, g, sched)
            assert np.array_equal(references[name], out), name
            assert report.restores == 0 and report.task_retries == 0

    @pytest.mark.parametrize("scheme", ["tess", "naive", "diamond"])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_transient_faults_recover(self, scheme, seed,
                                             schedules, references):
        sched = schedules[scheme]
        plan = FaultPlan.random(sched.num_groups, rate=0.5, seed=seed,
                                max_task=1)
        g = Grid(SPEC, SHAPE, seed=0)
        out, report = _execute_resilient(SPEC, g, sched, fault_plan=plan,
                                        num_threads=4)
        assert np.array_equal(references[scheme], out)
        if plan.faults:
            assert plan.total_hits > 0  # the plan actually fired

    def test_crash_corrupt_stall_combined(self, schedules, references):
        sched = schedules["tess"]
        plan = FaultPlan([
            FaultSpec("crash", group=1, task=0),
            FaultSpec("corrupt", group=3, task=1),
            FaultSpec("stall", group=2, task=0, stall_s=0.03),
        ])
        policy = ResiliencePolicy(task_deadline_s=0.02)
        g = Grid(SPEC, SHAPE, seed=0)
        trace = ExecutionTrace(scheme=sched.scheme)
        out, report = _execute_resilient(SPEC, g, sched, policy=policy,
                                        fault_plan=plan, num_threads=4,
                                        trace=trace)
        assert np.array_equal(references["tess"], out)
        assert report.task_retries >= 2      # crash + stalled deadline
        assert report.guard_violations == 1  # the silent corruption
        assert report.restores >= 1          # repaired from checkpoint
        kinds = trace.event_counts()
        assert kinds.get("retry", 0) >= 2
        assert kinds.get("restore", 0) >= 1
        assert kinds.get("checkpoint", 0) == report.checkpoints_taken

    def test_checkpoint_interval_zero_replays_from_start(self, schedules,
                                                         references):
        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("corrupt", group=3, task=0)])
        policy = ResiliencePolicy(checkpoint_interval=0)
        g = Grid(SPEC, SHAPE, seed=0)
        out, report = _execute_resilient(SPEC, g, sched, policy=policy,
                                        fault_plan=plan)
        assert np.array_equal(references["tess"], out)
        assert report.checkpoints_taken == 1  # the initial snapshot only
        assert report.restores == 1

    def test_task_retry_is_not_naive_rerun(self, schedules, references):
        """Stall-after-completion then retry: the undo log matters.

        A stalled task has already applied all its actions when the
        deadline trips; blindly re-running it would read its own
        same-parity writes and silently corrupt the grid (this was a
        real bug — the undo log restores the task's write footprint
        before every retry).
        """
        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("stall", group=2, task=0,
                                    stall_s=0.03)])
        policy = ResiliencePolicy(task_deadline_s=0.01)
        g = Grid(SPEC, SHAPE, seed=0)
        out, report = _execute_resilient(SPEC, g, sched, policy=policy,
                                        fault_plan=plan)
        assert np.array_equal(references["tess"], out)
        assert report.task_retries == 1


class TestFailurePaths:
    def test_persistent_crash_raises_structured(self, schedules):
        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("crash", group=2, task=0,
                                    max_hits=1000)])
        g = Grid(SPEC, SHAPE, seed=0)
        with pytest.raises(ExecutionError) as ei:
            _execute_resilient(SPEC, g, sched, fault_plan=plan,
                              num_threads=4)
        assert ei.value.group == 2
        assert ei.value.scheme == sched.scheme
        assert ei.value.attempts >= 3  # retries + restarts exhausted

    def test_persistent_crash_degrades_to_sequential(self, schedules):
        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("crash", group=2, task=0,
                                    max_hits=1000)])
        g = Grid(SPEC, SHAPE, seed=0)
        try:
            _execute_resilient(SPEC, g, sched, fault_plan=plan,
                              num_threads=4,
                              trace=(tr := ExecutionTrace(sched.scheme)))
        except ExecutionError:
            pass
        assert tr.event_counts().get("degrade", 0) >= 1

    def test_zero_tolerance_policy_fails_fast(self, schedules):
        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("crash", group=1, task=0)])
        policy = ResiliencePolicy(max_task_retries=0, max_group_restarts=0)
        g = Grid(SPEC, SHAPE, seed=0)
        with pytest.raises(ExecutionError):
            _execute_resilient(SPEC, g, sched, policy=policy,
                              fault_plan=plan)

    def test_guard_violation_when_no_restarts_left(self, schedules):
        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("corrupt", group=1, task=0)])
        policy = ResiliencePolicy(max_task_retries=0, max_group_restarts=0)
        g = Grid(SPEC, SHAPE, seed=0)
        with pytest.raises(GuardViolation) as ei:
            _execute_resilient(SPEC, g, sched, policy=policy,
                              fault_plan=plan)
        assert ei.value.group == 1

    def test_wall_deadline_turns_stall_into_structured_error(self,
                                                             schedules):
        """A wedged worker cannot hang the run past the wall budget.

        The stall here sleeps far longer than the whole-run deadline;
        without the wall clock the run would block for the full
        ``stall_s`` (and forever, for a real wedge).  With it, the
        sleeping task is interrupted and a typed
        :class:`StallTimeoutError` names the stalled task — not
        retried, not replayed (the budget is global).
        """
        import time as _time

        from repro.runtime import StallTimeoutError

        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("stall", group=2, task=0,
                                    stall_s=30.0)])
        policy = ResiliencePolicy(wall_deadline_s=0.25)
        g = Grid(SPEC, SHAPE, seed=0)
        t0 = _time.perf_counter()
        with pytest.raises(StallTimeoutError) as ei:
            _execute_resilient(SPEC, g, sched, policy=policy,
                              fault_plan=plan)
        elapsed = _time.perf_counter() - t0
        assert elapsed < 10.0, "stall was served instead of interrupted"
        assert ei.value.group == 2
        assert ei.value.deadline_s == pytest.approx(0.25)
        assert ei.value.elapsed_s >= 0.25
        # StallTimeoutError is an ExecutionError: the CLI maps it to
        # the structured exit code 3 rather than a hang or traceback
        assert isinstance(ei.value, ExecutionError)

    def test_wall_deadline_not_tripped_by_healthy_run(self, schedules,
                                                      references):
        policy = ResiliencePolicy(wall_deadline_s=120.0)
        g = Grid(SPEC, SHAPE, seed=0)
        out, _ = _execute_resilient(SPEC, g, schedules["tess"],
                                   policy=policy)
        assert np.array_equal(references["tess"], out)

    def test_structural_preflight(self):
        sched = RegionSchedule(scheme="bad", shape=SHAPE, steps=2)
        sched.add(0, [RegionAction(t=5, region=((0, 4), (0, 4)))])
        g = Grid(SPEC, SHAPE, seed=0)
        with pytest.raises(ValueError, match="outside"):
            _execute_resilient(SPEC, g, sched)

    def test_private_tasks_rejected(self, schedules):
        sched = RegionSchedule(scheme="ghost", shape=SHAPE, steps=STEPS,
                               private_tasks=True)
        g = Grid(SPEC, SHAPE, seed=0)
        with pytest.raises(ValueError, match="private"):
            _execute_resilient(SPEC, g, sched)


class TestThreadedFailFast:
    """Satellite: _execute_threaded cancels + raises structured errors."""

    def test_crash_raises_execution_error(self, schedules):
        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("crash", group=1, task=0)])
        g = Grid(SPEC, SHAPE, seed=0)
        with pytest.raises(ExecutionError) as ei:
            _execute_threaded(SPEC, g, sched, num_threads=4,
                             fault_plan=plan)
        assert ei.value.group == 1
        assert ei.value.scheme == sched.scheme
        assert isinstance(ei.value.__cause__, InjectedFault)

    def test_error_reports_cancelled_tasks(self, schedules):
        sched = schedules["tess"]
        plan = FaultPlan([FaultSpec("crash", group=1, task=0)])
        g = Grid(SPEC, SHAPE, seed=0)
        with pytest.raises(ExecutionError, match="cancelled"):
            _execute_threaded(SPEC, g, sched, num_threads=2,
                             fault_plan=plan)

    def test_clean_run_unchanged(self, schedules, references):
        g = Grid(SPEC, SHAPE, seed=0)
        out = _execute_threaded(SPEC, g, schedules["tess"], num_threads=4)
        assert np.array_equal(references["tess"], out)
