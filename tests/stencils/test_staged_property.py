"""Property: a prefix split of a linear kernel is bit-identical.

:func:`split_linear_spec` cuts a monolithic linear kernel after tap
``k`` into a two-stage system — stage ``partial`` accumulates the first
``k`` taps into a scratch field ``w``, stage ``total`` starts from
``1.0 * w`` (an exact IEEE multiply) and adds the rest in the original
order.  The composed macro-step therefore performs the *same additions
in the same order* as the monolithic kernel, so for every split point,
tiling scheme, step count (including the empty schedule) and stretched
lattice, the staged run must equal the monolithic reference
bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import RunConfig, Session
from repro.stencils import Grid, get_stencil, reference_sweep
from repro.stencils.staged import split_linear_spec

pytestmark = pytest.mark.stages

#: linear paper kernels and their tap counts (split points 1..taps-1)
KERNELS = {"heat1d": 3, "1d5p": 5, "heat2d": 5, "2d9p": 9}

SCHEMES = ("tess", "diamond", "mwd")


def _staged_grid_like(staged, mono_grid):
    """A staged grid whose ``u`` field carries ``mono_grid``'s values.

    ``w`` starts zero — the split's scratch field is dead state at
    ``t=0``, the first macro-step overwrites it before anything reads
    it.
    """
    g = Grid(staged, mono_grid.shape, init="zeros")
    fu = staged.field_index("u")
    for parity in (0, 1):
        g.interior(parity)[fu] = mono_grid.interior(parity)
    return g


cases = st.tuples(
    st.sampled_from(sorted(KERNELS)),
    st.integers(min_value=1, max_value=6),      # raw split point, clamped
    st.sampled_from(SCHEMES),
    st.integers(min_value=0, max_value=7),      # steps, incl. empty
    st.integers(min_value=2, max_value=4),      # b
    st.integers(min_value=17, max_value=34),    # edge, rarely b-aligned
)


@given(cases)
@settings(max_examples=25, deadline=None)
def test_prefix_split_bit_identical(case):
    kernel, raw_k, scheme, steps, b, edge = case
    mono = get_stencil(kernel)
    k = 1 + raw_k % (KERNELS[kernel] - 1)
    staged = split_linear_spec(mono, k)
    shape = tuple(
        max(edge // (1 + j), 2 * b * mono.slopes[j] + 1)
        for j in range(mono.ndim)
    )

    mono_grid = Grid(mono, shape, seed=11)
    ref = reference_sweep(mono, mono_grid.copy(), steps)

    config = RunConfig(shape=shape, steps=steps, scheme=scheme, b=b,
                       backend="compiled")
    result = Session(staged).run(config, grid=_staged_grid_like(
        staged, mono_grid))
    got = result.interior[staged.field_index("u")]
    assert np.array_equal(ref, got), (
        f"{kernel} split at {k}: {scheme} steps={steps} b={b} "
        f"shape={shape} diverged from the monolithic reference"
    )
