"""Update-time functions of the tessellation scheme (paper §3.4–3.5).

Everything in this module operates on the per-dimension *distance
vector* ``a = (a_0, …, a_{d-1})`` of a grid point: ``a_j`` is the
point's distance to the nearest ``B_0`` centre hyperplane along
dimension ``j``, capped at the time-tile depth ``b``.  The paper derives
(Lemmas 3.2 and 3.4) that the stage-``i`` update count of a point
depends only on the multiset of its distances:

* sort descending, ``a_(0) ≥ … ≥ a_(d-1)``, and pad ``a_(-1) = b``,
  ``a_(d) = 0``; then the stage-``i`` update count is the *gap*

  ``T_i = a_(i-1) - a_(i)``

  (so ``T_0 = b - a_(0)`` and ``T_d = a_(d-1)``), and

* inside stage ``i`` the point is updated during the phase-local step
  window ``[b - a_(i-1), b - a_(i))``, advancing exactly one time step
  per local step.

The two headline theorems fall out immediately and are exposed as
checkable predicates: the gaps telescope to ``b`` (Theorem 3.5) and the
windows of ±1-apart neighbours interleave safely (Theorem 3.6).

All functions accept either a single distance vector (1-D array-like of
length ``d``) or a batch (``(..., d)`` array); results broadcast over
the leading axes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _as_batch(a: np.ndarray) -> np.ndarray:
    arr = np.asarray(a, dtype=np.int64)
    if arr.ndim == 0:
        raise ValueError("distance vector must have at least one dimension")
    return arr


def sorted_desc(a: np.ndarray) -> np.ndarray:
    """Distances sorted descending along the last axis."""
    arr = _as_batch(a)
    return -np.sort(-arr, axis=-1)


def padded_sorted(a: np.ndarray, b: int) -> np.ndarray:
    """Sorted distances with the sentinel pads ``a_(-1)=b``, ``a_(d)=0``.

    Returns an array with last axis of length ``d + 2``:
    ``[b, a_(0), …, a_(d-1), 0]``.
    """
    s = sorted_desc(a)
    if np.any(s > b) or np.any(s < 0):
        raise ValueError(f"distances must lie in [0, {b}]")
    pad_shape = s.shape[:-1] + (1,)
    lead = np.full(pad_shape, b, dtype=s.dtype)
    tail = np.zeros(pad_shape, dtype=s.dtype)
    return np.concatenate([lead, s, tail], axis=-1)


def update_counts(a: np.ndarray, b: int) -> np.ndarray:
    """``T_i`` for all stages ``i = 0..d`` (Lemma 3.2 / 3.4 gap form).

    Last axis of the result has length ``d + 1``; entry ``i`` is the
    number of time steps the point advances during stage ``i``.
    """
    p = padded_sorted(a, b)
    return p[..., :-1] - p[..., 1:]


def stage_window(a: np.ndarray, b: int, i: int) -> Tuple[np.ndarray, np.ndarray]:
    """Half-open phase-local step window ``[start, end)`` of stage ``i``.

    ``start = b - a_(i-1)`` and ``end = b - a_(i)`` with the sentinel
    pads; the point is updated at local steps ``start, …, end-1`` of
    stage ``i``, advancing from phase time ``s`` to ``s+1`` at step
    ``s``.
    """
    p = padded_sorted(a, b)
    d = p.shape[-1] - 2
    if not 0 <= i <= d:
        raise ValueError(f"stage {i} out of range for d={d}")
    return b - p[..., i], b - p[..., i + 1]


def stage_index(a: np.ndarray, b: int, s: int) -> np.ndarray:
    """Stage in which the update ``s → s+1`` of this point happens.

    Derived identity: the point advances from phase time ``s`` to
    ``s+1`` during stage ``#{j : a_j ≥ b - s}``.
    """
    arr = _as_batch(a)
    if not 0 <= s < b:
        raise ValueError(f"local step {s} out of range for b={b}")
    return np.count_nonzero(arr >= b - s, axis=-1)


def accumulated_time(a: np.ndarray, b: int, after_stage: int) -> np.ndarray:
    """Total updates after stages ``0..after_stage`` (``b - a_(k)``).

    ``after_stage = -1`` gives 0 (before the phase); ``after_stage = d``
    gives ``b`` (Theorem 3.5).
    """
    p = padded_sorted(a, b)
    d = p.shape[-1] - 2
    if not -1 <= after_stage <= d:
        raise ValueError(f"stage {after_stage} out of range for d={d}")
    return b - p[..., after_stage + 1]


# ---------------------------------------------------------------------------
# Literal paper formulas (used as cross-checks in the test-suite)
# ---------------------------------------------------------------------------

def T_start(a: np.ndarray, b: int, i: int) -> np.ndarray:
    """Paper ``T_i^s``: max of ``b - a_j`` over the starting dimensions.

    Here the starting dimensions of the containing ``B_i`` block are,
    by Lemma 3.4, the ``i`` dimensions with the largest distances.
    """
    start, _ = stage_window(a, b, i)
    return start


def T_end(a: np.ndarray, b: int, i: int) -> np.ndarray:
    """Paper ``T_i^e``: ``b`` minus the max distance over ending dims."""
    _, end = stage_window(a, b, i)
    return end


def lemma_3_2(a: np.ndarray, b: int, i: int) -> np.ndarray:
    """Unified form of Lemma 3.2 for the point's *owning* block.

    ``T_i = min(b, A_1) - max(0, A_2)`` where ``A_1`` holds the point's
    ``i`` largest distances (the dimensions glued in its stage-``i``
    block, Lemma 3.4) and ``A_2`` the remaining ``d - i``; the ``b``
    and ``0`` arguments are the sentinels for the empty sets at
    ``i = 0`` and ``i = d``.  (The paper prints the two index ranges
    the other way around, which contradicts its own ``T_i^s``/``T_i^e``
    derivation and Table 2; this is the reconciled form, equal to the
    gap form used everywhere else — tested property.)
    """
    arr = sorted_desc(a)
    d = arr.shape[-1]
    if not 0 <= i <= d:
        raise ValueError(f"stage {i} out of range for d={d}")
    lo = np.min(arr[..., :i], axis=-1, initial=b)
    hi = np.max(arr[..., i:], axis=-1, initial=0)
    return lo - hi


def lemma_3_4_split(a: np.ndarray, i: int, starting: Tuple[int, ...]) -> np.ndarray:
    """``min(A_1) - max(A_2)`` for an arbitrary ``i``-subset split.

    Lemma 3.4: the value is ``≥ 0`` only when ``starting`` picks the
    ``i`` largest distances; every other split is ``≤ 0``.  Used to
    prove each point belongs to exactly one ``B_i`` block per stage.
    """
    arr = _as_batch(a)
    d = arr.shape[-1]
    sset = tuple(sorted(starting))
    if len(sset) != i or any(not 0 <= j < d for j in sset) or len(set(sset)) != i:
        raise ValueError(f"starting dims {starting} is not an {i}-subset of 0..{d-1}")
    rest = tuple(j for j in range(d) if j not in sset)
    if not sset:
        raise ValueError("split requires a non-empty starting set (0 < i < d)")
    if not rest:
        raise ValueError("split requires a non-empty ending set (0 < i < d)")
    a1 = arr[..., sset]
    a2 = arr[..., rest]
    return np.min(a1, axis=-1) - np.max(a2, axis=-1)


def theorem_3_5_holds(a: np.ndarray, b: int) -> np.ndarray:
    """Check ``Σ_i T_i == b`` pointwise (Theorem 3.5)."""
    return update_counts(a, b).sum(axis=-1) == b


def theorem_3_6_holds(a: np.ndarray, a_neighbor: np.ndarray, b: int) -> bool:
    """Check the dependence condition between two neighbouring points.

    For every stage prefix, the accumulated times of points whose
    distance vectors differ by at most one per dimension must differ by
    at most one — the correctness condition of §3.4 (Theorem 3.6).
    """
    ax = _as_batch(a)
    ay = _as_batch(a_neighbor)
    if np.any(np.abs(ax - ay) > 1):
        raise ValueError("inputs are not neighbouring distance vectors")
    d = ax.shape[-1]
    for k in range(-1, d + 1):
        tx = accumulated_time(ax, b, k)
        ty = accumulated_time(ay, b, k)
        if np.any(np.abs(tx - ty) > 1):
            return False
    return True
