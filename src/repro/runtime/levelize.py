"""Dependence-DAG levelling — the work-stealing-ideal schedule.

The structural barrier groups of a recursive decomposition (Pochoir's
space/time cuts) serialize far more than the true dependences require;
runtimes like Cilk exploit exactly that slack by work stealing.  This
pass rebuilds a schedule's groups as *longest-path levels* of the real
inter-task dependence DAG:

* task ``B`` depends on an earlier task ``A`` iff they interact — their
  time intervals are within one step of each other **and** ``A``'s
  bounding box dilated by one slope intersects ``B``'s (reads reach one
  slope beyond the update set; the ping-pong antidependences live in
  the same ±1 time window);
* ``level(B) = 1 + max(level(A))`` over dependencies; tasks of one
  level are mutually independent and become one barrier group.

Every true dependence of the original (valid) group order is an edge,
so executing levels in order is still a legal linearization; the level
count is the DAG's critical path in tasks — the best any greedy
scheduler can do.  The paper's §2.2 remark that Pochoir "can utilize
dynamic queues to improve the synchronization overhead" is exactly the
gap between the structural groups and this levelling.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.runtime.schedule import RegionSchedule
from repro.stencils.spec import StencilSpec


def levelize(spec: StencilSpec, schedule: RegionSchedule) -> RegionSchedule:
    """Return a copy of ``schedule`` with groups = DAG levels."""
    tasks = [t for t in schedule.tasks if t.actions]
    n = len(tasks)
    out = RegionSchedule(
        scheme=schedule.scheme + "+ws",
        shape=schedule.shape,
        steps=schedule.steps,
        private_tasks=schedule.private_tasks,
        group_sync_cost=schedule.group_sync_cost,
        task_overhead_factor=schedule.task_overhead_factor,
    )
    if n == 0:
        return out
    d = len(schedule.shape)
    slopes = spec.slopes
    # order by original groups (a valid linearization), then pack arrays
    order = sorted(range(n), key=lambda i: tasks[i].group)
    t_lo = np.empty(n, dtype=np.int64)
    t_hi = np.empty(n, dtype=np.int64)
    orig_group = np.empty(n, dtype=np.int64)
    lo = np.empty((n, d), dtype=np.int64)
    hi = np.empty((n, d), dtype=np.int64)
    for rank, i in enumerate(order):
        task = tasks[i]
        a, b = task.time_range
        t_lo[rank], t_hi[rank] = a, b
        orig_group[rank] = task.group
        box = task.bounding_box()
        for j, (l, h) in enumerate(box):
            lo[rank, j], hi[rank, j] = l, h
    # dilate earlier tasks' boxes by one slope (read reach)
    dlo = lo - np.asarray(slopes)
    dhi = hi + np.asarray(slopes)
    levels = np.zeros(n, dtype=np.int64)
    # bucket earlier tasks by the time steps their interval touches, so
    # each task only tests temporally plausible predecessors (the
    # pairwise test is otherwise quadratic in the task count)
    buckets: List[List[int]] = [[] for _ in range(schedule.steps + 1)]
    for k in range(n):
        cand_set: set = set()
        for t in range(max(0, t_lo[k]), min(schedule.steps, t_hi[k]) + 1):
            cand_set.update(buckets[t])
        if cand_set:
            cand = np.fromiter(cand_set, dtype=np.int64)
            # tasks of one original group are independent by
            # construction — never an edge between them
            temporal = (orig_group[cand] < orig_group[k]) \
                & (t_lo[cand] <= t_hi[k]) & (t_lo[k] <= t_hi[cand])
            spatial = np.ones(len(cand), dtype=bool)
            for j in range(d):
                spatial &= (dlo[cand, j] < hi[k, j]) \
                    & (lo[k, j] < dhi[cand, j])
            dep = temporal & spatial
            if dep.any():
                levels[k] = levels[cand[dep]].max() + 1
        for t in range(max(0, t_lo[k]), min(schedule.steps, t_hi[k]) + 1):
            buckets[t].append(k)
    for rank, i in enumerate(order):
        out.add(int(levels[rank]), tasks[i].actions, label=tasks[i].label)
    return out
