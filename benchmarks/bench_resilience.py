"""Resilience-layer overhead on the real NumPy substrate (ISSUE 1).

Measures the cost of fault tolerance in the happy path — checkpoint
copies, invariant-guard sweeps, per-task undo logs — across checkpoint
cadences, plus the replay cost of recovering one late injected fault.
Not a paper figure; this quantifies the engineering trade-off recorded
in ``docs/resilience.md``.
"""

import numpy as np

from repro import Grid, get_stencil, make_lattice
from repro.bench.resilience import resilience_overhead
from repro.core.schedules import tess_schedule
from repro.runtime import FaultPlan, FaultSpec, ResiliencePolicy
from repro.runtime.resilience import _execute_resilient
from repro.runtime.schedule import _execute_schedule

SHAPE = (96, 96)
STEPS = 16
B = 4


def test_checkpoint_cadence_overhead(benchmark, capsys):
    out = benchmark.pedantic(
        lambda: resilience_overhead(shape=SHAPE, steps=STEPS, repeats=2),
        rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[resilience] checkpoint cadence trade-off:")
        print(out)
    spec = get_stencil("heat2d")
    lat = make_lattice(spec, SHAPE, B)
    sched = tess_schedule(spec, SHAPE, lat, STEPS, merged=True)
    ref = _execute_schedule(spec, Grid(spec, SHAPE, seed=0), sched).copy()

    # recovery replays deterministically: a late fault with sparse
    # checkpoints still converges to the bit-identical answer
    plan = FaultPlan([FaultSpec("corrupt", group=sched.num_groups - 1,
                                task=0)])
    out2, rep = _execute_resilient(
        spec, Grid(spec, SHAPE, seed=0), sched,
        policy=ResiliencePolicy(checkpoint_interval=0), fault_plan=plan)
    assert np.array_equal(ref, out2)
    assert rep.restores == 1
