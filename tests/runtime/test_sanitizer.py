"""Schedule sanitizer: clean schemes, seeded mutations, wiring.

The headline guarantees tested here:

* every shipped scheme (all baselines, tessellation merged/unmerged,
  §3.6 stretched and high-order configs, §4.2 coarsened lattices)
  sanitizes **clean**, and
* every seeded mutation kind — dropped action, shifted region,
  premature group merge, undersized ghost band — is **detected** on at
  least three schemes, with the violation naming the offending
  group/task/step.

Together these pin down the sanitizer's false-positive and
false-negative behaviour on the whole scheme zoo.
"""

import numpy as np
import pytest

from repro import Grid, get_stencil, make_lattice
from repro.cli import SCHEMES, _build_schedule
from repro.core.profiles import AxisProfile, TessLattice
from repro.core.schedules import tess_schedule
from repro.distributed.partition import SlabPartition
from repro.runtime import (
    RegionAction,
    RegionSchedule,
    ResiliencePolicy,
    SanitizerViolation,
    apply_mutation,
    drop_action,
    merge_groups,
    sanitize_distributed_plan,
    sanitize_schedule,
    shift_region,
    verify_schedule,
)
from repro.runtime.resilience import _execute_resilient
from repro.runtime.threadpool import _execute_threaded
from repro.runtime.tracing import ExecutionTrace

pytestmark = pytest.mark.sanitizer


def build(scheme, kernel="heat1d", shape=(300,), steps=8, b=4):
    return _build_schedule(get_stencil(kernel), shape, steps, scheme, b)


class TestCleanSchemes:
    """All shipped schemes must sanitize clean (no false positives)."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("kernel,shape", [
        ("heat1d", (300,)),
        ("heat2d", (48, 48)),
        ("life", (40, 40)),
    ])
    def test_scheme_is_clean(self, scheme, kernel, shape):
        spec = get_stencil(kernel)
        sched = _build_schedule(spec, shape, 8, scheme, 4)
        report = sanitize_schedule(spec, sched)
        assert report.ok, report.describe()
        assert report.actions_checked > 0

    @pytest.mark.parametrize("n", [37, 101])
    def test_stretched_lattice_is_clean(self, n):
        """§3.6: grid size not a multiple of the period (Fig. 6)."""
        spec = get_stencil("heat1d")
        prof = AxisProfile.stretched(n, b=4, sigma=spec.slopes[0])
        sched = tess_schedule(spec, (n,), TessLattice((prof,)), 12)
        report = sanitize_schedule(spec, sched)
        assert report.ok, report.describe()
        assert verify_schedule(spec, sched)

    @pytest.mark.parametrize("kernel,shape", [
        ("1d5p", (200,)),          # high-order: slope 2
        ("heat3d", (14, 14, 14)),
        ("3d27p", (14, 14, 14)),
    ])
    @pytest.mark.parametrize("merged", [True, False])
    def test_high_order_and_3d_clean(self, kernel, shape, merged):
        spec = get_stencil(kernel)
        lat = make_lattice(spec, shape, 3)
        sched = tess_schedule(spec, shape, lat, 6, merged=merged)
        report = sanitize_schedule(spec, sched)
        assert report.ok, report.describe()

    def test_coarsened_lattice_clean(self):
        """§4.2 coarsening with the merge-compatible period."""
        spec = get_stencil("heat2d")
        b, w = 3, 4
        profs = tuple(
            AxisProfile.coarse(24, b, sigma=1, core_width=w,
                               period=2 * w + 2 * (b - 1))
            for _ in range(2)
        )
        sched = tess_schedule(spec, (24, 24), TessLattice(profs), 6,
                              merged=True)
        assert sanitize_schedule(spec, sched).ok

    def test_periodic_spec_rejected(self):
        spec = get_stencil("heat1d", boundary="periodic")
        sched = RegionSchedule(scheme="x", shape=(16,), steps=1)
        with pytest.raises(ValueError, match="periodic"):
            sanitize_schedule(spec, sched)


# the three structural mutation kinds, each applied to >= 3 schemes;
# (scheme, group-to-mutate) pairs chosen so the mutation is actually
# illegal (merging the first two groups of the skewed wavefront is
# legal — both tiles are at the same step — so skewed merges group 1)
DROP_CASES = ["tess", "tess-unmerged", "diamond", "mwd", "naive",
              "pochoir", "hexagonal", "spatial"]
SHIFT_CASES = DROP_CASES + ["skewed"]
MERGE_CASES = [("tess", 0), ("diamond", 0), ("mwd", 0), ("naive", 0),
               ("pochoir", 0), ("hexagonal", 0), ("skewed", 1)]


class TestSeededMutations:
    """Every mutation kind is caught, naming group/task/step."""

    @pytest.mark.parametrize("scheme", DROP_CASES)
    def test_dropped_action_detected(self, scheme):
        spec = get_stencil("heat1d")
        sched = build(scheme)
        report = sanitize_schedule(spec, drop_action(sched, 0, 0))
        assert not report.ok
        kinds = report.kinds()
        assert "gap" in kinds or "missing-dependence" in kinds
        assert any(v.step is not None for v in report.violations)

    @pytest.mark.parametrize("scheme", SHIFT_CASES)
    def test_shifted_region_detected(self, scheme):
        spec = get_stencil("heat1d")
        sched = build(scheme)
        report = sanitize_schedule(spec, shift_region(sched, 0, 0))
        assert not report.ok
        kinds = report.kinds()
        assert ("double-write" in kinds or "gap" in kinds
                or "out-of-bounds" in kinds)

    @pytest.mark.parametrize("scheme,group", MERGE_CASES)
    def test_merged_groups_detected(self, scheme, group):
        spec = get_stencil("heat1d")
        sched = build(scheme)
        report = sanitize_schedule(spec, merge_groups(sched, group))
        assert not report.ok
        kinds = report.kinds()
        assert "missing-dependence" in kinds or "race" in kinds

    def test_violation_names_group_task_step(self):
        spec = get_stencil("heat1d")
        sched = build("tess")
        report = sanitize_schedule(spec, merge_groups(sched, 0))
        v = report.violations[0]
        assert v.group is not None
        assert v.task
        assert v.step is not None
        text = v.describe()
        assert f"group {v.group}" in text
        assert f"step {v.step}" in text
        assert v.task in text

    def test_out_of_bounds_shift_detected(self):
        """Shifting the domain-edge region past the boundary."""
        spec = get_stencil("heat1d")
        sched = build("naive")
        report = sanitize_schedule(
            spec, shift_region(sched, 0, 0, delta=-1))
        assert not report.ok
        assert "out-of-bounds" in report.kinds()

    @pytest.mark.parametrize("mutate", [
        lambda s: drop_action(s, 0, 0),
        lambda s: shift_region(s, 0, 0),
        lambda s: merge_groups(s, 0),
        lambda s: shift_region(s, 0, 0, action=-1),
    ])
    def test_private_task_mutations_detected(self, mutate):
        """Ghost-zone (overlapped) schedules get the private battery."""
        spec = get_stencil("heat1d")
        sched = build("overlapped")
        report = sanitize_schedule(spec, mutate(sched))
        assert not report.ok

    def test_mutators_do_not_modify_input(self):
        spec = get_stencil("heat1d")
        sched = build("tess")
        before = sum(len(t.actions) for t in sched.tasks)
        drop_action(sched, 0, 0)
        shift_region(sched, 0, 0)
        merge_groups(sched, 0)
        assert sum(len(t.actions) for t in sched.tasks) == before
        assert sanitize_schedule(spec, sched).ok

    def test_apply_mutation_spec_parsing(self):
        sched = build("naive")
        mutated = apply_mutation(sched, "drop-action@0/1")
        assert sum(len(t.actions) for t in mutated.tasks) == \
            sum(len(t.actions) for t in sched.tasks) - 1
        with pytest.raises(ValueError, match="bad mutation spec"):
            apply_mutation(sched, "drop-action")
        with pytest.raises(ValueError, match="unknown mutation kind"):
            apply_mutation(sched, "explode@0")
        with pytest.raises(ValueError, match="no tasks in barrier group"):
            apply_mutation(sched, "drop-action@999")


class TestRedundancyDeclaration:
    """Double writes pass only when the schedule declares them."""

    def _double_write(self):
        spec = get_stencil("heat1d")
        sched = RegionSchedule(scheme="dup", shape=(16,), steps=1)
        sched.add(0, [RegionAction(t=0, region=((0, 16),))], label="a")
        sched.add(1, [RegionAction(t=0, region=((0, 16),))], label="b")
        return spec, sched

    def test_undeclared_double_write_flagged(self):
        spec, sched = self._double_write()
        report = sanitize_schedule(spec, sched)
        assert "double-write" in report.kinds()

    def test_declared_redundant_passes(self):
        spec, sched = self._double_write()
        assert sanitize_schedule(spec, sched, redundant=True).ok
        sched.redundant = True
        assert sanitize_schedule(spec, sched).ok

    def test_overlapped_ships_declared_redundant(self):
        sched = build("overlapped")
        assert sched.redundant and sched.private_tasks

    def test_redundant_gap_still_flagged(self):
        spec = get_stencil("heat1d")
        sched = RegionSchedule(scheme="dup", shape=(16,), steps=1,
                               redundant=True)
        sched.add(0, [RegionAction(t=0, region=((0, 8),))], label="a")
        report = sanitize_schedule(spec, sched)
        assert "gap" in report.kinds()


class TestExecutorWiring:
    """The sanitize pre-flight in every execution entry point."""

    def _mutated(self):
        spec = get_stencil("heat1d")
        return spec, merge_groups(build("tess"), 0)

    def test_verify_schedule_sanitize_flag(self):
        spec, bad = self._mutated()
        assert verify_schedule(spec, build("tess"), sanitize=True)
        with pytest.raises(SanitizerViolation):
            verify_schedule(spec, bad, sanitize=True)

    def test_execute_threaded_preflight(self):
        spec, bad = self._mutated()
        good = build("tess")
        g = Grid(spec, (300,), seed=1)
        out = _execute_threaded(spec, g, good, num_threads=2, sanitize=True)
        assert np.isfinite(out).all()
        with pytest.raises(SanitizerViolation):
            _execute_threaded(spec, Grid(spec, (300,), seed=1), bad,
                             num_threads=2, sanitize=True)

    def test_execute_resilient_preflight_and_trace(self):
        spec, bad = self._mutated()
        policy = ResiliencePolicy(sanitize=True)
        trace = ExecutionTrace(scheme="tess")
        out, report = _execute_resilient(
            spec, Grid(spec, (300,), seed=1), build("tess"),
            policy=policy, trace=trace)
        assert report.groups_run > 0
        assert trace.event_counts().get("sanitize") == 1
        trace_bad = ExecutionTrace(scheme="tess")
        with pytest.raises(SanitizerViolation) as exc:
            _execute_resilient(spec, Grid(spec, (300,), seed=1), bad,
                              policy=policy, trace=trace_bad)
        assert exc.value.violations
        counts = trace_bad.event_counts()
        assert counts.get("sanitize") == 1
        assert counts.get("violation", 0) >= 1

    def test_sanitizer_violation_is_guard_subclass(self):
        """exit-code layering: callers catching GuardViolation still see
        sanitizer findings, but the CLI maps them to exit 5 first."""
        from repro.runtime.errors import GuardViolation

        spec, bad = self._mutated()
        report = sanitize_schedule(spec, bad)
        with pytest.raises(GuardViolation):
            report.raise_if_violations()


class TestDistributedGhostBand:
    """Rank-local plans: clean at the required width, loud below it."""

    @pytest.mark.parametrize("kernel,shape", [
        ("heat1d", (400,)), ("heat2d", (48, 48)),
    ])
    def test_required_width_is_clean(self, kernel, shape):
        spec = get_stencil(kernel)
        lat = make_lattice(spec, shape, 4)
        report = sanitize_distributed_plan(spec, lat, 12, 4)
        assert report.ok, report.describe()

    @pytest.mark.parametrize("kernel,shape,ranks", [
        ("heat1d", (400,), 4),
        ("heat1d", (400,), 2),
        ("heat2d", (48, 48), 3),
    ])
    def test_undersized_ghost_detected(self, kernel, shape, ranks):
        spec = get_stencil(kernel)
        lat = make_lattice(spec, shape, 4)
        report = sanitize_distributed_plan(spec, lat, 12, ranks, ghost=1)
        assert not report.ok
        assert set(report.kinds()) == {"ghost-band"}
        v = report.violations[0]
        assert "rank" in v.detail and "required ghost width" in v.detail
        assert v.task and v.step is not None and v.group is not None

    @pytest.mark.parametrize("n", [37, 101])
    def test_stretched_lattice_plan_is_clean(self, n):
        """§3.6 stretched blocks: clean at the lattice-derived width."""
        spec = get_stencil("heat1d")
        prof = AxisProfile.stretched(n, b=4, sigma=spec.slopes[0])
        lat = TessLattice((prof,))
        report = sanitize_distributed_plan(spec, lat, 12, 3)
        assert report.ok, report.describe()
        assert report.actions_checked > 0

    @pytest.mark.parametrize("n", [37, 101])
    def test_stretched_lattice_undersized_ghost_reports_width(self, n):
        """The violation must *name* the required band width: stretched
        plateaus widen it beyond the uniform-lattice value, so a caller
        fixing the band needs the number, not just a failure."""
        spec = get_stencil("heat1d")
        prof = AxisProfile.stretched(n, b=4, sigma=spec.slopes[0])
        lat = TessLattice((prof,))
        required = SlabPartition((n,), 3).ghost_width(lat)
        report = sanitize_distributed_plan(spec, lat, 12, 3, ghost=1)
        assert not report.ok
        assert set(report.kinds()) == {"ghost-band"}
        assert f"required ghost width is {required}" \
            in report.violations[0].detail

    def test_periodic_grid_lattice_plan_is_clean(self):
        """A lattice with an explicit (non-default) period still yields
        a clean distributed plan at its required width."""
        spec = get_stencil("heat2d")
        b, w = 3, 4
        period = 2 * w + 2 * (b - 1)
        lat = make_lattice(spec, (48, 48), b, core_widths=(w, w),
                           periods=(period, period))
        report = sanitize_distributed_plan(spec, lat, 9, 3)
        assert report.ok, report.describe()

    def test_periodic_grid_lattice_undersized_ghost_detected(self):
        spec = get_stencil("heat2d")
        b, w = 3, 4
        period = 2 * w + 2 * (b - 1)
        lat = make_lattice(spec, (48, 48), b, core_widths=(w, w),
                           periods=(period, period))
        required = SlabPartition((48, 48), 3).ghost_width(lat)
        report = sanitize_distributed_plan(spec, lat, 9, 3, ghost=1)
        assert not report.ok
        assert f"required ghost width is {required}" \
            in report.violations[0].detail

    def test_execute_distributed_preflight(self):
        from repro.distributed.exec import _execute_distributed

        spec = get_stencil("heat1d")
        lat = make_lattice(spec, (400,), 4)
        g = Grid(spec, (400,), seed=0)
        out, _ = _execute_distributed(spec, g.copy(), lat, 8, 4,
                                     fault_plan=None, sanitize=True)
        assert np.isfinite(out).all()
        with pytest.raises(SanitizerViolation):
            _execute_distributed(spec, g.copy(), lat, 8, 4,
                                fault_plan=None, ghost_override=1,
                                sanitize=True)


class TestReportSurface:
    def test_report_describe_and_counters(self):
        spec = get_stencil("heat1d")
        report = sanitize_schedule(spec, build("tess"))
        text = report.describe()
        assert "clean" in text and "actions" in text
        assert report.steps_checked == 8
        assert report.pairs_checked > 0
        assert report.seconds >= 0

    def test_structure_violations_short_circuit(self):
        """A malformed schedule reports structure errors only (the
        deeper checks would be meaningless)."""
        spec = get_stencil("heat1d")
        sched = RegionSchedule(scheme="x", shape=(16,), steps=2)
        sched.add(0, [RegionAction(t=7, region=((0, 16),))], label="late")
        report = sanitize_schedule(spec, sched)
        assert set(report.kinds()) == {"structure"}

    def test_exit_code_constant(self):
        from repro.runtime.errors import EXIT_GUARD, EXIT_SANITIZER

        assert EXIT_SANITIZER == 5
        assert EXIT_SANITIZER != EXIT_GUARD
