"""Task-level runtime substrate.

Every tiling scheme in :mod:`repro` — the tessellation and all the
baselines — compiles to the same representation: a
:class:`~repro.runtime.schedule.RegionSchedule`, an ordered list of
tasks, each a sequence of ``(time step, hyper-rectangle)`` actions,
partitioned into *barrier groups* (tasks of one group are mutually
independent and may run concurrently).

On top of that one representation sit:

* a sequential executor (:func:`~repro.runtime.schedule.execute_schedule`)
  used for correctness validation of every scheme;
* a threaded executor (:mod:`~repro.runtime.threadpool`) demonstrating
  real shared-memory parallel execution (NumPy releases the GIL inside
  region applications);
* the task-graph analysis (:mod:`~repro.runtime.taskgraph`) feeding the
  simulated machine — work, span, concurrency profiles, footprints;
* the resilience layer (:mod:`~repro.runtime.resilience`,
  :mod:`~repro.runtime.faults`, :mod:`~repro.runtime.errors`) —
  deterministic fault injection, barrier-group checkpoint/restart,
  bounded retries with sequential degradation, and runtime invariant
  guards.  Barrier groups double as consistency points: at every
  barrier the ping-pong pair is a complete state, so a snapshot plus
  the group index is all a restart needs.
* the structural sanitizer (:mod:`~repro.runtime.sanitizer`) — a
  symbolic interval-arithmetic analysis proving tessellation
  (Theorem 3.5), ping-pong dependence legality (Theorem 3.6) and
  intra-group race freedom for any schedule *before* it runs, with
  seeded-bug mutators (:mod:`~repro.runtime.mutations`) as its test
  harness.
"""

from repro.runtime.schedule import (
    RegionAction,
    ScheduledTask,
    RegionSchedule,
    execute_schedule,
    schedule_stats,
    verify_schedule,
)
from repro.runtime.taskgraph import TaskGraph, TaskNode, build_taskgraph
from repro.runtime.threadpool import execute_threaded
from repro.runtime.levelize import levelize
from repro.runtime.errors import (
    ChecksumMismatchError,
    DeadlineExceeded,
    ExchangeTimeoutError,
    ExecutionError,
    GhostDivergenceError,
    GuardViolation,
    InjectedFault,
    JobNotFound,
    QueueSaturated,
    RankLostError,
    SanitizerViolation,
    StallTimeoutError,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.resilience import (
    Checkpoint,
    ResiliencePolicy,
    ResilienceReport,
    execute_resilient,
)
from repro.runtime.sanitizer import (
    SanitizerReport,
    Violation,
    sanitize_distributed_plan,
    sanitize_schedule,
)
from repro.runtime.mutations import (
    MUTATION_KINDS,
    apply_mutation,
    drop_action,
    merge_groups,
    shift_region,
)

__all__ = [
    "RegionAction",
    "ScheduledTask",
    "RegionSchedule",
    "execute_schedule",
    "schedule_stats",
    "verify_schedule",
    "TaskGraph",
    "TaskNode",
    "build_taskgraph",
    "execute_threaded",
    "levelize",
    "ChecksumMismatchError",
    "DeadlineExceeded",
    "ExchangeTimeoutError",
    "ExecutionError",
    "GhostDivergenceError",
    "GuardViolation",
    "InjectedFault",
    "JobNotFound",
    "QueueSaturated",
    "RankLostError",
    "StallTimeoutError",
    "FaultPlan",
    "FaultSpec",
    "Checkpoint",
    "ResiliencePolicy",
    "ResilienceReport",
    "execute_resilient",
    "SanitizerViolation",
    "SanitizerReport",
    "Violation",
    "sanitize_schedule",
    "sanitize_distributed_plan",
    "MUTATION_KINDS",
    "apply_mutation",
    "drop_action",
    "merge_groups",
    "shift_region",
]
