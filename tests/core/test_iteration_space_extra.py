"""Additional iteration-space coverage: higher dimensions, block
resolution at the extreme stages, quadrant geometry."""

import numpy as np
import pytest

from repro.core.iteration_space import (
    NO_UPDATE,
    block_resolved_counts,
    quadrant_coords,
    stage_tables,
    time_tile_total,
)


class TestQuadrant:
    def test_coords_count(self):
        assert quadrant_coords(2, 3).shape == (16, 2)
        assert quadrant_coords(3, 2).shape == (27, 3)

    def test_coords_range(self):
        c = quadrant_coords(2, 4)
        assert c.min() == 0 and c.max() == 4


class TestHigherDims:
    @pytest.mark.parametrize("d,b", [(1, 5), (2, 4), (3, 3), (4, 2)])
    def test_time_tile_total_is_b(self, d, b):
        assert np.all(time_tile_total(d, b) == b)

    def test_4d_stage_tables_consistent(self):
        """Σ_i T_i = b holds cell-wise in 4D (beyond paper's tables)."""
        b = 2
        total = np.zeros((b + 1,) * 4, dtype=np.int64)
        for i in range(5):
            t = stage_tables(4, b, i)["count"]
            total += np.where(t == NO_UPDATE, 0, t)
        assert np.all(total == b)


class TestBlockResolvedExtremes:
    def test_stage_0_block_is_whole_quadrant(self):
        blk = block_resolved_counts(2, 3, 0, center=(0, 0))
        full = stage_tables(2, 3, 0)["count"]
        assert np.array_equal(blk, full)

    def test_stage_d_block_is_whole_quadrant(self):
        blk = block_resolved_counts(2, 3, 2, center=(3, 3))
        full = stage_tables(2, 3, 2)["count"]
        assert np.array_equal(blk, full)

    def test_mid_stage_blocks_partition_positive_cells(self):
        """The C(d,i) per-block tables tile the combined table (3D)."""
        d, b, stage = 3, 3, 1
        full = stage_tables(d, b, stage)["count"]
        combined = np.full_like(full, NO_UPDATE)
        claimed = np.zeros_like(full)
        centers = [(b, 0, 0), (0, b, 0), (0, 0, b)]
        for c in centers:
            blk = block_resolved_counts(d, b, stage, center=c)
            member = blk != NO_UPDATE
            claimed += member
            combined = np.where(member, blk, combined)
        # no cell claimed twice; every strictly-dominated cell claimed
        assert claimed.max() <= 1
        live = full != NO_UPDATE
        # ties (equal largest distances) stay unclaimed by the strict
        # dominance rule — everything claimed must match the full table
        assert np.array_equal(combined[claimed == 1], full[claimed == 1])
