"""Asymmetric (upwind) stencils and assorted edge cases.

The paper's framework covers any Jacobi dependence pattern; upwind
advection has a one-sided neighbourhood, so it probes the slope/halo
machinery off the symmetric path every other kernel uses.
"""

import numpy as np
import pytest

from repro import Grid, make_lattice, run_pointwise
from repro.core.executor import _run_blocked, _run_merged
from repro.core.profiles import AxisProfile, TessLattice
from repro.stencils import reference_sweep
from repro.stencils.operators import LinearStencilOperator
from repro.stencils.spec import StencilSpec


def upwind(boundary="dirichlet"):
    """First-order upwind advection: u' = (1-c)·u + c·u_left, c = 0.5."""
    op = LinearStencilOperator([(0,), (-1,)], [0.5, 0.5])
    return StencilSpec("upwind1d", 1, op, shape="custom",
                       boundary=boundary)


class TestUpwindAdvection:
    def test_slopes_are_one_sided_maximum(self):
        spec = upwind()
        assert spec.slopes == (1,)
        assert spec.num_neighbors == 2

    def test_executors_match_reference(self):
        spec = upwind()
        for runner in (run_pointwise, _run_blocked, _run_merged):
            g = Grid(spec, (60,), seed=3)
            ref = reference_sweep(spec, g.copy(), 9)
            lat = make_lattice(spec, (60,), 3)
            out = runner(spec, g.copy(), lat, 9)
            assert np.allclose(ref, out, rtol=1e-12, atol=1e-13), runner

    def test_pulse_transports_rightward(self):
        """A periodic upwind pulse's centre of mass moves right at
        speed c = 0.5 cells/step."""
        spec = upwind("periodic")
        n, steps = 64, 32
        g = Grid(spec, (n,), init="zeros")
        g.interior(0)[n // 4] = 1.0
        lat = TessLattice((AxisProfile.uniform(n, 4, periodic=True),))
        out = run_pointwise(spec, g, lat, steps)
        x = np.arange(n)
        com = float((x * out).sum() / out.sum())
        assert com == pytest.approx(n // 4 + 0.5 * steps, abs=1.0)
        # mass conserved on the torus
        assert out.sum() == pytest.approx(1.0)

    def test_2d_one_sided(self):
        op = LinearStencilOperator(
            [(0, 0), (-1, 0), (0, -1)], [0.5, 0.25, 0.25]
        )
        spec = StencilSpec("upwind2d", 2, op, shape="custom")
        g = Grid(spec, (20, 18), seed=4)
        ref = reference_sweep(spec, g.copy(), 7)
        lat = make_lattice(spec, (20, 18), 2)
        out = _run_merged(spec, g.copy(), lat, 7)
        assert np.allclose(ref, out, rtol=1e-12, atol=1e-13)


class TestSmallDomains:
    """Grids smaller than one block period still tessellate."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_tiny_1d(self, n):
        from repro.stencils import heat1d

        spec = heat1d()
        g = Grid(spec, (n,), seed=n)
        ref = reference_sweep(spec, g.copy(), 5)
        lat = make_lattice(spec, (n,), 2)
        out = _run_blocked(spec, g.copy(), lat, 5)
        assert np.allclose(ref, out, rtol=1e-12, atol=1e-13)

    def test_tiny_2d_merged(self):
        from repro.stencils import heat2d

        spec = heat2d()
        g = Grid(spec, (3, 2), seed=1)
        ref = reference_sweep(spec, g.copy(), 4)
        lat = make_lattice(spec, (3, 2), 2)
        out = _run_merged(spec, g.copy(), lat, 4)
        assert np.allclose(ref, out, rtol=1e-12, atol=1e-13)

    def test_depth_exceeding_steps(self):
        """b much larger than the whole run (one truncated phase)."""
        from repro.stencils import heat1d

        spec = heat1d()
        g = Grid(spec, (40,), seed=2)
        ref = reference_sweep(spec, g.copy(), 3)
        lat = make_lattice(spec, (40,), 8)
        out = _run_blocked(spec, g.copy(), lat, 3)
        assert np.allclose(ref, out, rtol=1e-12, atol=1e-13)


class TestReportFormatEdges:
    def test_fmt_extremes(self):
        from repro.bench.report import _fmt

        assert _fmt(0.0) == "0"
        assert _fmt(12345.6) == "1.23e+04"
        assert _fmt(0.004) == "0.004"
        assert _fmt("txt") == "txt"

    def test_dist_result_zero_time(self):
        from repro.distributed.model import DistSimResult

        r = DistSimResult(scheme="s", nodes=1, cores_per_node=1,
                          time_s=0.0, comm_bytes=0.0, comm_time_s=0.0,
                          useful_points=1)
        assert r.gstencils == 0.0
        assert r.comm_fraction == 0.0
