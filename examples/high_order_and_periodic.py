#!/usr/bin/env python3
"""The §3.6 extensions: high-order stencils and periodic boundaries.

* High order — the 1d5p kernel (order-2 star) is tessellated through
  the supernode reduction of Fig. 5: distances are measured in
  slope-sized units, so the same `B_i` machinery applies unchanged.
* Periodic boundaries — a grid whose size is *not* a multiple of the
  block period gets one stretched block per axis (Fig. 6): the points
  in the stretched gap take all `b` updates in one intermediate stage.

Both run through the unified pipeline: the block executor is the
``baseline:blocked`` backend, and ``baseline:pointwise`` is the only
backend whose ``supports()`` accepts periodic boundaries.

Run:  python examples/high_order_and_periodic.py
"""

from repro import Grid, get_stencil
from repro.api import RunConfig, Session
from repro.core.profiles import AxisProfile, TessLattice


def high_order() -> None:
    spec = get_stencil("1d5p")
    print(spec.describe())
    shape = (20_000,)
    steps = 48
    result = Session(spec).run(
        RunConfig(shape=shape, steps=steps, b=12,
                  backend="baseline:blocked", verify=True),
        grid=Grid(spec, shape, seed=1))
    assert result.ok
    widths = {hi - lo for lo, hi in result.lattice.profiles[0].cores}
    print(
        f"  order-2 dependence handled by sigma-sized cores {widths}; "
        f"{steps} steps verified on N={shape[0]}\n"
    )


def periodic_stretched() -> None:
    spec = get_stencil("heat2d", boundary="periodic")
    print(spec.describe())
    shape = (157, 211)  # primes: no block period divides these
    steps = 20
    b = 4
    lattice = TessLattice((
        AxisProfile.stretched(shape[0], b, periodic=True),
        AxisProfile.stretched(shape[1], b, periodic=True),
    ))
    for prof in lattice.profiles:
        prof.validate()
    result = Session(spec).execute(
        Grid(spec, shape, seed=2), lattice=lattice,
        config=RunConfig(shape=shape, steps=steps, b=b,
                         backend="baseline:pointwise", verify=True))
    assert result.ok
    gaps = [
        max(hi - lo for lo, hi in prof.plateaus())
        for prof in lattice.profiles
    ]
    print(
        f"  non-multiple grid {shape} tessellated with one stretched "
        f"block per axis (widest plateaus: {gaps}); "
        f"{steps} periodic steps verified\n"
    )


def main() -> None:
    high_order()
    periodic_stretched()
    print("both §3.6 extensions verified against the naive reference.")


if __name__ == "__main__":
    main()
