"""The four shipped systems: bit-identity against per-stage oracles.

``reference_step`` drives a staged spec with an independent full-grid,
stage-at-a-time traversal (no tiling, no scratch, no region clipping) —
a genuinely different code path from the composed macro-step operator
the engine executes.  Every supported backend x scheme cell must match
it bit-for-bit (``np.array_equal``): the staged pipeline performs the
same per-point arithmetic, only the traversal differs.
"""

import numpy as np
import pytest

from repro.api import RunConfig, Session, run
from repro.stencils import Grid, get_stencil, reference_sweep
from repro.stencils.systems import (
    SYSTEM_ALIASES,
    get_system,
    system_names,
)

pytestmark = pytest.mark.stages

SYSTEMS = ("fdtd1d", "fdtd2d", "shallow_water", "gray_scott")
#: grid edge deliberately not a multiple of b=4: stretched blocks
SIZES = {1: (50,), 2: (22, 26)}
STEPS_CASES = (0, 6)
BACKENDS = ("serial", "compiled", "threaded", "batched", "resilient")
SCHEMES = ("naive", "tess", "diamond", "mwd")


@pytest.fixture(scope="module")
def references():
    refs = {}
    for name in SYSTEMS:
        spec = get_system(name)
        shape = SIZES[spec.ndim]
        for steps in STEPS_CASES:
            refs[name, steps] = reference_sweep(
                spec, Grid(spec, shape, seed=0), steps
            )
    return refs


@pytest.mark.parametrize("steps", STEPS_CASES)
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("system", SYSTEMS)
def test_system_matches_oracle(system, backend, scheme, steps, references):
    spec = get_system(system)
    config = RunConfig(shape=SIZES[spec.ndim], steps=steps, scheme=scheme,
                       b=4, backend=backend, threads=2)
    result = run(spec, config)
    assert np.array_equal(references[system, steps], result.interior), (
        f"{system}: {backend} x {scheme} (steps={steps}) diverged from "
        f"the per-stage oracle"
    )
    if steps:
        assert set(result.stats.stages) == set(spec.fields)


@pytest.mark.parametrize("system", SYSTEMS)
def test_run_many_members_match_oracle(system):
    spec = get_system(system)
    shape = SIZES[spec.ndim]
    results = Session(spec).run_many(
        RunConfig(shape=shape, steps=5, scheme="tess", b=4, batch=3,
                  seed=7)
    )
    assert len(results) == 3
    for i, result in enumerate(results):
        ref = reference_sweep(spec, Grid(spec, shape, seed=7 + i), 5)
        assert np.array_equal(ref, result.interior), (
            f"{system}: batch member {i} diverged"
        )


def test_registry_and_aliases():
    assert sorted(system_names()) == sorted(SYSTEMS)
    for alias, target in SYSTEM_ALIASES.items():
        assert get_system(alias).name == target
    assert get_system("fdtd2d-te").name == "fdtd2d"
    with pytest.raises(KeyError, match="unknown system"):
        get_system("navier_stokes")


def test_get_stencil_resolves_systems():
    spec = get_stencil("gray-scott")
    assert spec.is_staged
    assert spec.name == "gray_scott"
    with pytest.raises(ValueError, match="[Dd]irichlet"):
        get_stencil("fdtd2d", boundary="periodic")
    with pytest.raises(KeyError):
        get_stencil("no_such_kernel")
