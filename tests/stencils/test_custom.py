"""Tests for custom stencils — arbitrary, anisotropic and
variable-coefficient kernels through the full tessellation stack."""

import numpy as np
import pytest

from repro import Grid, make_lattice, run_pointwise
from repro.core.executor import _run_blocked, _run_merged
from repro.stencils import reference_sweep
from repro.stencils.custom import (
    VariableCoefficientOperator,
    anisotropic_star,
    custom_box,
    custom_star,
    variable_coefficient,
)


def _check_all_executors(spec, shape, b, steps, core_widths=None):
    g_ref = Grid(spec, shape, seed=7)
    ref = reference_sweep(spec, g_ref.copy(), steps)
    lat = make_lattice(spec, shape, b, core_widths=core_widths)
    for runner in (run_pointwise, _run_blocked, _run_merged):
        out = runner(spec, g_ref.copy(), lat, steps)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12), runner.__name__


class TestCustomStarBox:
    def test_order3_star_1d(self):
        spec = custom_star(1, 3)
        assert spec.slopes == (3,)
        _check_all_executors(spec, (80,), 2, 5)

    def test_order2_star_2d(self):
        spec = custom_star(2, 2)
        assert spec.num_neighbors == 9
        _check_all_executors(spec, (26, 24), 2, 5)

    def test_4d_star(self):
        """Beyond the paper's 3D experiments: d = 4 works unchanged."""
        spec = custom_star(4, 1)
        _check_all_executors(spec, (7, 6, 7, 6), 1, 3)

    def test_order2_box_2d(self):
        spec = custom_box(2, order=2)
        assert spec.num_neighbors == 25
        assert spec.slopes == (2, 2)
        _check_all_executors(spec, (30, 28), 2, 4)

    def test_mass_conserving_defaults(self):
        for spec in (custom_star(2, 2, boundary="periodic"),
                     custom_box(2, 1, boundary="periodic")):
            u = np.full((12, 12), 2.5)
            assert np.allclose(spec.operator.apply_wrapped(u), u)

    def test_box_missing_class_rejected(self):
        with pytest.raises(ValueError):
            custom_box(2, 1, weights_by_class={0: 1.0})


class TestAnisotropicStar:
    def test_slopes(self):
        spec = anisotropic_star((2, 1))
        assert spec.slopes == (2, 1)

    def test_executors_2d(self):
        spec = anisotropic_star((2, 1))
        _check_all_executors(spec, (40, 22), 2, 5)

    def test_executors_3d(self):
        spec = anisotropic_star((1, 2, 1))
        _check_all_executors(spec, (10, 18, 9), 1, 3)

    def test_bad_orders(self):
        with pytest.raises(ValueError):
            anisotropic_star(())
        with pytest.raises(ValueError):
            anisotropic_star((0, 1))


class TestVariableCoefficient:
    def test_executors_1d(self):
        spec = variable_coefficient(1, (50,))
        _check_all_executors(spec, (50,), 3, 7)

    def test_executors_2d(self):
        spec = variable_coefficient(2, (18, 16))
        _check_all_executors(spec, (18, 16), 2, 5)

    def test_periodic_pointwise(self):
        from repro.core.profiles import AxisProfile, TessLattice

        spec = variable_coefficient(1, (24,), boundary="periodic")
        g1 = Grid(spec, (24,), seed=3)
        ref = reference_sweep(spec, g1.copy(), 6)
        lat = TessLattice((AxisProfile.uniform(24, 2, periodic=True),))
        out = run_pointwise(spec, g1.copy(), lat, 6)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_constant_field_fixed_point(self):
        spec = variable_coefficient(2, (10, 10), boundary="periodic")
        u = np.full((10, 10), 1.5)
        assert np.allclose(spec.operator.apply_wrapped(u), u)

    def test_heterogeneity_is_real(self):
        """Distinct points evolve differently under identical inputs."""
        spec = variable_coefficient(1, (30,))
        g = Grid(spec, (30,), init="zeros")
        g.interior(0)[...] = 1.0
        reference_sweep(spec, g, 1)
        inner = g.interior(1)[2:-2]
        assert inner.std() > 0  # Dirichlet edges aside, still varied

    def test_validation(self):
        from repro.stencils.operators import star_offsets

        offs = star_offsets(1, 1)
        with pytest.raises(ValueError):
            VariableCoefficientOperator(offs, [np.ones(5)])
        with pytest.raises(ValueError):
            VariableCoefficientOperator(
                offs, [np.ones(5), np.ones(6), np.ones(5)]
            )
        with pytest.raises(ValueError):
            VariableCoefficientOperator(
                offs, [np.ones((5, 2))] * 3
            )
