"""RunStats / RunResult — the one stats schema of the pipeline.

Before the facade existed, three incompatible stats objects described
an execution depending on which entry point ran it: trace events
(:class:`~repro.runtime.tracing.ExecutionTrace`), the distributed
:class:`~repro.distributed.exec.CommStats` and the engine's
:class:`~repro.engine.cache.CacheStats` — plus the resilient executor's
:class:`~repro.runtime.resilience.ResilienceReport`.  A
:class:`RunStats` merges all four under one roof:

* ``phases`` — wall-clock per pipeline phase (``build`` the schedule,
  ``sanitize``, ``lower`` to a compiled plan, ``execute``, ``verify``);
* ``schedule`` — the structural schedule statistics
  (:func:`~repro.runtime.schedule.schedule_stats`);
* ``events`` — the runtime event stream (retries, checkpoints,
  restores, heartbeats, ...);
* ``comm`` / ``resilience`` / ``cache`` — the family-specific counter
  blocks, present when the backend produced them and ``None`` otherwise
  (never zero-filled fakes);
* ``plan_compiles`` / ``cache_hits`` — the **single** authoritative
  compile/hit counters.  Local backends report the per-run plan-cache
  delta; distributed backends report the rank-side compile tally.  A
  resilient run that retries or restarts never double-counts: the plan
  is compiled once, before execution, and every replay reuses it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["RunStats", "RunResult", "cache_delta"]


def cache_delta(before: Dict[str, float], after: Dict[str, float]):
    """Per-run CacheStats: counter difference of two snapshots."""
    from repro.engine.cache import CacheStats

    return CacheStats(**{k: type(v)(after[k] - before[k])
                         for k, v in before.items()})


@dataclass
class RunStats:
    """Unified statistics of one pipeline run (see module docstring)."""

    backend: str = ""
    scheme: str = ""
    engine: str = "naive"
    shape: Tuple[int, ...] = ()
    steps: int = 0

    #: seconds per pipeline phase: build/sanitize/lower/execute/verify
    phases: Dict[str, float] = field(default_factory=dict)
    #: structural schedule stats (tasks, groups, redundancy, ...)
    schedule: Dict[str, Any] = field(default_factory=dict)
    #: runtime event stream (RuntimeEvent objects)
    events: List[Any] = field(default_factory=list)

    #: distributed communication counters (None for local backends)
    comm: Any = None
    #: resilience counters (None unless the resilient backend ran)
    resilience: Any = None
    #: per-run plan-cache counter delta (None when no lowering ran)
    cache: Any = None

    #: plans compiled for this run, counted exactly once (see module
    #: docstring for the double-counting rule)
    plan_compiles: int = 0
    #: plan-cache hits for this run
    cache_hits: int = 0

    #: fallback hops the QoS chain took to produce this result: one
    #: dict per hop (``from``/``to`` backend, ``error`` class name,
    #: ``detail``); empty for a run that succeeded on its primary
    degradations: List[Dict[str, Any]] = field(default_factory=list)

    #: result of the verify phase (None = verification not requested)
    verified: Optional[bool] = None

    # ----------------------------------------------------------------

    @property
    def execute_seconds(self) -> float:
        return self.phases.get("execute", 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def points(self) -> int:
        n = 1
        for s in self.shape:
            n *= int(s)
        return n * self.steps

    @property
    def mstencils_per_s(self) -> float:
        secs = self.execute_seconds
        return self.points / secs / 1e6 if secs > 0 else 0.0

    def event_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def as_dict(self) -> Dict[str, Any]:
        """Flat, JSON-friendly view of the full schema."""
        out: Dict[str, Any] = {
            "backend": self.backend,
            "scheme": self.scheme,
            "engine": self.engine,
            "shape": list(self.shape),
            "steps": self.steps,
            "phases": dict(self.phases),
            "schedule": dict(self.schedule),
            "events": self.event_counts(),
            "plan_compiles": self.plan_compiles,
            "cache_hits": self.cache_hits,
            "degradations": [dict(hop) for hop in self.degradations],
            "verified": self.verified,
        }
        for name in ("comm", "resilience", "cache"):
            block = getattr(self, name)
            if block is None:
                out[name] = None
            elif hasattr(block, "as_dict"):
                out[name] = block.as_dict()
            else:
                out[name] = {
                    k: v for k, v in vars(block).items()
                    if isinstance(v, (int, float, str, bool))
                }
        return out

    def describe(self) -> str:
        """One-line human summary (the CLI's stats line)."""
        bits = [f"backend={self.backend}", f"scheme={self.scheme}"]
        if self.schedule:
            bits.append(f"tasks={self.schedule.get('tasks', 0)}")
            bits.append(f"barriers={self.schedule.get('groups', 0)}")
        secs = self.execute_seconds
        bits.append(f"execute={secs * 1e3:.1f}ms")
        if self.plan_compiles or self.cache_hits:
            bits.append(f"plan_compiles={self.plan_compiles}")
            bits.append(f"cache_hits={self.cache_hits}")
        if self.degradations:
            hops = "->".join(h.get("to", "?") for h in self.degradations)
            bits.append(f"degraded={hops}")
        if self.verified is not None:
            bits.append(f"verified={'OK' if self.verified else 'MISMATCH'}")
        return " ".join(bits)


@dataclass
class RunResult:
    """What a pipeline run returns: the answer plus everything known.

    ``interior`` is the grid interior at time ``steps`` — the same
    array every legacy entry point used to return — and ``stats`` is
    the unified :class:`RunStats`.  The intermediate pipeline artifacts
    (schedule, lattice, compiled plan) ride along for inspection and
    reuse.
    """

    interior: np.ndarray
    stats: RunStats
    config: Any = None  #: the normalised RunConfig that produced this
    grid: Any = None
    schedule: Any = None
    lattice: Any = None
    plan: Any = None
    sanitizer: Any = None  #: SanitizerReport when the sanitize phase ran

    # convenience views onto the stats blocks -------------------------

    @property
    def comm(self):
        return self.stats.comm

    @property
    def resilience(self):
        return self.stats.resilience

    @property
    def ok(self) -> bool:
        """True when verification ran and matched (False if it failed;
        raises if verification was not requested)."""
        if self.stats.verified is None:
            raise ValueError("run was not verified; pass verify=True")
        return bool(self.stats.verified)
