"""Tests for the hexagonal and pipelined time-skewing baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import hexagonal_lattice, hexagonal_schedule, skewed_schedule
from repro.runtime import schedule_stats, verify_schedule
from repro.stencils import d1p5, game_of_life, heat1d, heat2d, heat3d


class TestHexagonal:
    @pytest.mark.parametrize("factory,shape,b,w", [
        (heat1d, (80,), 3, 4), (d1p5, (90,), 2, 6),
        (heat2d, (30, 24), 2, 5), (heat3d, (14, 10, 9), 2, 4),
        (game_of_life, (26, 22), 2, 5),
    ])
    def test_valid(self, factory, shape, b, w):
        spec = factory()
        sched = hexagonal_schedule(spec, shape, b, 2 * b + 1, hex_width=w)
        assert verify_schedule(spec, sched)

    def test_flat_edges_have_hex_width(self):
        spec = heat1d()
        lat = hexagonal_lattice(spec, (100,), 3, hex_width=7)
        prof = lat.profiles[0]
        assert prof.core_width == 7
        widths = {hi - lo for lo, hi in prof.plateaus()}
        assert widths == {7}  # plateau == flat edge == core width

    def test_wider_hexes_fewer_tasks(self):
        spec = heat1d()
        narrow = hexagonal_schedule(spec, (200,), 3, 9, hex_width=2)
        wide = hexagonal_schedule(spec, (200,), 3, 9, hex_width=10)
        assert len(wide.tasks) < len(narrow.tasks)

    def test_no_redundancy(self):
        spec = heat2d()
        st_ = schedule_stats(
            hexagonal_schedule(spec, (24, 20), 2, 6, hex_width=4)
        )
        assert st_["redundancy"] == 0.0

    @given(st.integers(30, 90), st.integers(1, 3), st.integers(1, 8),
           st.integers(0, 9))
    @settings(max_examples=20, deadline=None)
    def test_random_1d(self, n, b, w, steps):
        spec = heat1d()
        sched = hexagonal_schedule(spec, (n,), b, steps, hex_width=w)
        assert verify_schedule(spec, sched, seed=n)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            hexagonal_schedule(heat1d(), (40,), 2, 4, hex_width=0)


class TestSkewed:
    @pytest.mark.parametrize("factory,shape,tw", [
        (heat1d, (80,), 8), (d1p5, (60,), 4),
        (heat2d, (26, 22), 6), (game_of_life, (20, 20), 5),
        (heat3d, (12, 10, 9), 4),
    ])
    def test_valid(self, factory, shape, tw):
        spec = factory()
        assert verify_schedule(spec, skewed_schedule(spec, shape, 7, tw))

    def test_pipelined_startup(self):
        """Early wavefronts are narrow — the paper's §2.1 criticism."""
        spec = heat1d()
        sched = skewed_schedule(spec, (120,), 10, 10)
        groups = sched.groups()
        first = len(groups[0])
        widest = max(len(ts) for ts in groups.values())
        assert first == 1
        assert widest > 2 * first

    def test_wavefront_group_law(self):
        """tile k's step s sits in group 2s + k exactly."""
        spec = heat1d()
        sched = skewed_schedule(spec, (30,), 4, 10)
        for task in sched.tasks:
            s = task.actions[0].t
            lo = task.actions[0].region[0][0]
            k = lo // 10
            assert task.group == 2 * s + k

    def test_many_barriers(self):
        spec = heat1d()
        steps = 12
        sched = skewed_schedule(spec, (120,), steps, 12)
        assert sched.num_groups > steps  # worse than one barrier/step

    def test_width_below_slope_rejected(self):
        with pytest.raises(ValueError, match="slope"):
            skewed_schedule(d1p5(), (40,), 4, 1)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            skewed_schedule(heat1d(), (40,), -1, 4)
        with pytest.raises(ValueError):
            skewed_schedule(heat1d(), (40,), 4, 0)
        with pytest.raises(ValueError):
            skewed_schedule(heat1d(), (40, 40), 4, 4)
