"""The benchmark kernels of the paper (Table 4).

Four star stencils — Heat-1D (3-point), 1d5p (order-2 star), Heat-2D
(5-point), Heat-3D (7-point) — and three box stencils — 2d9p, Game of
Life and 3d27p.  All are included in the Pluto and Pochoir benchmark
suites the paper compares against; the coefficient choices follow the
standard heat-equation discretisations used there.

Every factory accepts a ``boundary`` keyword so the same kernel can be
run with Dirichlet (the paper's configuration) or periodic boundaries.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.stencils.operators import (
    GameOfLifeOperator,
    LinearStencilOperator,
    box_offsets,
    star_offsets,
)
from repro.stencils.spec import StencilSpec


def heat1d(boundary: str = "dirichlet") -> StencilSpec:
    """Heat-1D: 3-point star, ``u' = 0.125 u_l + 0.75 u_c + 0.125 u_r``."""
    op = LinearStencilOperator(
        offsets=[(-1,), (0,), (1,)],
        coeffs=[0.125, 0.75, 0.125],
    )
    return StencilSpec("heat1d", 1, op, shape="star", boundary=boundary)


def d1p5(boundary: str = "dirichlet") -> StencilSpec:
    """1d5p: order-2 1D star (5-point), symmetric smoothing weights."""
    op = LinearStencilOperator(
        offsets=[(-2,), (-1,), (0,), (1,), (2,)],
        coeffs=[0.0625, 0.25, 0.375, 0.25, 0.0625],
    )
    return StencilSpec("1d5p", 1, op, shape="star", boundary=boundary)


def heat2d(boundary: str = "dirichlet") -> StencilSpec:
    """Heat-2D: 5-point star, ``0.125`` per face and ``0.5`` centre."""
    op = LinearStencilOperator(
        offsets=[(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)],
        coeffs=[0.5, 0.125, 0.125, 0.125, 0.125],
    )
    return StencilSpec("heat2d", 2, op, shape="star", boundary=boundary)


def d2p9(boundary: str = "dirichlet") -> StencilSpec:
    """2d9p: 9-point 2D box with centre/face/corner coefficient classes."""
    offsets = box_offsets(2, 1)
    coeffs = []
    for off in offsets:
        nz = sum(1 for c in off if c != 0)
        coeffs.append({0: 0.5, 1: 0.1, 2: 0.025}[nz])
    op = LinearStencilOperator(offsets, coeffs)
    return StencilSpec("2d9p", 2, op, shape="box", boundary=boundary)


def game_of_life(boundary: str = "dirichlet") -> StencilSpec:
    """Conway's Game of Life — non-linear 2D 9-point box stencil."""
    return StencilSpec(
        "life", 2, GameOfLifeOperator(), shape="box", boundary=boundary
    )


def heat3d(boundary: str = "dirichlet") -> StencilSpec:
    """Heat-3D: 7-point star, ``0.1`` per face and ``0.4`` centre."""
    offsets = star_offsets(3, 1)
    coeffs = [0.4] + [0.1] * 6
    op = LinearStencilOperator(offsets, coeffs)
    return StencilSpec("heat3d", 3, op, shape="star", boundary=boundary)


def d3p27(boundary: str = "dirichlet") -> StencilSpec:
    """3d27p: 27-point 3D box, centre/face/edge/corner coefficients."""
    offsets = box_offsets(3, 1)
    coeffs = []
    for off in offsets:
        nz = sum(1 for c in off if c != 0)
        coeffs.append({0: 0.4, 1: 0.06, 2: 0.015, 3: 0.0075}[nz])
    op = LinearStencilOperator(offsets, coeffs)
    return StencilSpec("3d27p", 3, op, shape="box", boundary=boundary)


#: All seven paper benchmarks keyed by canonical name.
STENCIL_REGISTRY: Dict[str, Callable[..., StencilSpec]] = {
    "heat1d": heat1d,
    "1d5p": d1p5,
    "heat2d": heat2d,
    "2d9p": d2p9,
    "life": game_of_life,
    "heat3d": heat3d,
    "3d27p": d3p27,
}


def get_stencil(name: str, boundary: str = "dirichlet") -> StencilSpec:
    """Look up a paper kernel or staged system by name.

    Resolves the seven paper kernels first, then the staged systems of
    :mod:`repro.stencils.systems` (canonical names and aliases) — so
    every consumer of kernel strings (CLI, service wire format,
    idempotency keys) accepts systems with no further changes.
    """
    try:
        factory = STENCIL_REGISTRY[name]
    except KeyError:
        from repro.stencils.systems import SYSTEM_ALIASES, SYSTEM_REGISTRY

        canonical = SYSTEM_ALIASES.get(name, name)
        if canonical in SYSTEM_REGISTRY:
            if boundary != "dirichlet":
                raise ValueError(
                    f"staged system {name!r} supports Dirichlet "
                    f"boundaries only, got {boundary!r}"
                )
            return SYSTEM_REGISTRY[canonical]()
        raise KeyError(
            f"unknown stencil {name!r}; available: "
            f"{sorted(STENCIL_REGISTRY) + sorted(SYSTEM_REGISTRY)}"
        ) from None
    return factory(boundary=boundary)
