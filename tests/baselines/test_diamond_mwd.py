"""Tests for the Pluto-style diamond and Girih-style MWD baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import diamond_lattice, diamond_schedule, mwd_schedule
from repro.baselines.diamond import default_cut_dims
from repro.runtime import schedule_stats, verify_schedule
from repro.stencils import d1p5, game_of_life, heat1d, heat2d, heat3d


class TestDiamond:
    def test_default_cut_dims(self):
        assert default_cut_dims(1) == (0,)
        assert default_cut_dims(2) == (0,)
        assert default_cut_dims(3) == (0, 1)

    @pytest.mark.parametrize("factory,shape,b", [
        (heat1d, (40,), 4), (d1p5, (60,), 3),
        (heat2d, (20, 18), 3), (heat3d, (11, 10, 9), 2),
        (game_of_life, (16, 15), 2),
    ])
    def test_valid_default_cuts(self, factory, shape, b):
        spec = factory()
        assert verify_schedule(
            spec, diamond_schedule(spec, shape, b, 2 * b + 1)
        )

    def test_valid_all_cut_variants_2d(self):
        spec = heat2d()
        for cuts in [(0,), (1,), (0, 1)]:
            sched = diamond_schedule(spec, (20, 22), 2, 6, cut_dims=cuts)
            assert verify_schedule(spec, sched)

    def test_groups_per_phase(self):
        """#cut axes + 1 diamond families per phase."""
        spec = heat3d()
        s1 = diamond_schedule(spec, (16, 16, 16), 2, 4, cut_dims=(0,))
        s2 = diamond_schedule(spec, (16, 16, 16), 2, 4, cut_dims=(0, 1))
        assert s1.num_groups == 2 * 2
        assert s2.num_groups == 3 * 2

    def test_concurrent_start_width(self):
        """All tiles of a family are in one barrier group."""
        spec = heat1d()
        s = diamond_schedule(spec, (120,), 3, 3)
        st = schedule_stats(s)
        assert st["max_group_width"] >= 120 // 6 - 1

    def test_no_redundancy(self):
        spec = heat2d()
        st = schedule_stats(diamond_schedule(spec, (24, 24), 2, 6))
        assert st["redundancy"] == 0.0

    def test_lattice_slope_respected(self):
        spec = d1p5()
        lat = diamond_lattice(spec, (60,), 3)
        assert lat.profiles[0].sigma == 2

    def test_bad_cut_dims(self):
        spec = heat2d()
        with pytest.raises(ValueError):
            diamond_lattice(spec, (10, 10), 2, cut_dims=(5,))
        with pytest.raises(ValueError):
            diamond_lattice(spec, (10, 10), 2, cut_dims=())
        with pytest.raises(ValueError):
            diamond_schedule(spec, (10, 10), 2, 4, cut_dims=(0,), cut_dim=0)

    def test_shape_rank_mismatch(self):
        with pytest.raises(ValueError):
            diamond_lattice(heat2d(), (10,), 2)


class TestMWD:
    @pytest.mark.parametrize("factory,shape,b", [
        (heat1d, (40,), 3), (heat2d, (18, 16), 2),
        (heat3d, (10, 11, 9), 2),
    ])
    def test_valid(self, factory, shape, b):
        spec = factory()
        sched = mwd_schedule(spec, shape, b, 2 * b + 1, chunks=3,
                             concurrent_tiles=2)
        assert verify_schedule(spec, sched)

    @given(st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=12, deadline=None)
    def test_chunk_and_batch_invariance(self, chunks, tiles):
        """Result identical for any chunk/batch split (same updates)."""
        spec = heat2d()
        sched = mwd_schedule(spec, (17, 15), 2, 5, chunks=chunks,
                             concurrent_tiles=tiles)
        assert verify_schedule(spec, sched)

    def test_cheap_sync_flag(self):
        spec = heat1d()
        sched = mwd_schedule(spec, (30,), 2, 4)
        assert sched.group_sync_cost < 1.0

    def test_step_locked_groups(self):
        """Within one batch group, all actions share one time step."""
        spec = heat2d()
        sched = mwd_schedule(spec, (20, 20), 2, 4, chunks=2,
                             concurrent_tiles=8)
        for tasks in sched.groups().values():
            ts = {a.t for task in tasks for a in task.actions}
            assert len(ts) == 1

    def test_work_conservation(self):
        spec = heat2d()
        st = schedule_stats(mwd_schedule(spec, (20, 21), 2, 5))
        assert st["total_point_updates"] == 20 * 21 * 5
        assert st["redundancy"] == 0.0

    def test_bad_args(self):
        spec = heat1d()
        with pytest.raises(ValueError):
            mwd_schedule(spec, (20,), 2, -1)
        with pytest.raises(ValueError):
            mwd_schedule(spec, (20,), 2, 4, chunks=0)
        with pytest.raises(ValueError):
            mwd_schedule(spec, (20,), 2, 4, chunk_dim=3)
