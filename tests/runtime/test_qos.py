"""Unit tests for the QoS primitives (:mod:`repro.runtime.qos`).

Policy validation/normalization, the cancel token, the armed run
budget (deadline + cancellation precedence) and the admission
estimator.  End-to-end enforcement across every registered backend
lives in ``tests/api/test_qos_enforcement.py``.
"""

import time

import pytest

from repro import get_stencil
from repro.api import RunConfig
from repro.runtime.errors import (
    EXIT_DEADLINE,
    ExecutionError,
    RunCancelled,
    RunDeadlineExceeded,
)
from repro.runtime.qos import (
    AdmissionRejected,
    CancelToken,
    QoSPolicy,
    RunBudget,
    admit,
    estimate_peak_bytes,
)

pytestmark = pytest.mark.qos


# -- error taxonomy --------------------------------------------------

def test_error_types_and_exit_code():
    assert EXIT_DEADLINE == 9
    assert issubclass(RunDeadlineExceeded, ExecutionError)
    assert issubclass(RunCancelled, ExecutionError)
    assert issubclass(AdmissionRejected, ValueError)
    e = RunDeadlineExceeded("group 3", 1.5, 1.0)
    assert e.where == "group 3"
    assert "group 3" in str(e)
    assert "1.500" in str(e) and "1.000" in str(e)
    r = AdmissionRejected("elastic", 1000, 10)
    assert (r.backend, r.estimated_bytes, r.limit_bytes) == (
        "elastic", 1000, 10)


# -- CancelToken -----------------------------------------------------

def test_cancel_token_is_idempotent_and_shared():
    tok = CancelToken()
    assert not tok.cancelled
    tok.cancel()
    tok.cancel()
    assert tok.cancelled


# -- QoSPolicy -------------------------------------------------------

def test_policy_normalized_validates_and_canonicalizes():
    p = QoSPolicy(deadline_s=1.0, fallback=("threads", "sequential"))
    n = p.normalized()
    # aliases resolve to canonical registry names
    assert n.fallback == ("threaded", "serial")
    with pytest.raises(ValueError):
        QoSPolicy(deadline_s=0.0).normalized()
    with pytest.raises(ValueError):
        QoSPolicy(deadline_s=-1.0).normalized()
    with pytest.raises(ValueError):
        QoSPolicy(max_memory_bytes=0).normalized()
    with pytest.raises(ValueError):
        QoSPolicy(fallback=("no-such-backend",)).normalized()


def test_runconfig_normalizes_embedded_policy():
    cfg = RunConfig(qos=QoSPolicy(fallback=("threads",))).normalized()
    assert cfg.qos.fallback == ("threaded",)
    with pytest.raises(ValueError):
        RunConfig(qos=QoSPolicy(deadline_s=-3.0)).normalized()


# -- RunBudget -------------------------------------------------------

def test_budget_from_policy_arms_only_when_needed():
    assert RunBudget.from_policy(None) is None
    # a pure admission policy needs no clock
    assert RunBudget.from_policy(
        QoSPolicy(max_memory_bytes=1 << 30)) is None
    assert RunBudget.from_policy(QoSPolicy(deadline_s=5.0)) is not None
    assert RunBudget.from_policy(
        QoSPolicy(cancel_token=CancelToken())) is not None


def test_budget_deadline_expiry():
    b = RunBudget(deadline_s=0.02)
    b.check("early")  # inside budget: no raise
    assert not b.expired()
    time.sleep(0.03)
    assert b.expired()
    assert b.remaining() < 0
    with pytest.raises(RunDeadlineExceeded) as excinfo:
        b.check("phase t=4")
    assert excinfo.value.where == "phase t=4"
    assert excinfo.value.deadline_s == 0.02


def test_budget_unbounded_without_deadline():
    b = RunBudget(token=CancelToken())
    assert b.remaining() is None
    assert not b.expired()
    b.check("anywhere")


def test_cancellation_outranks_deadline():
    tok = CancelToken()
    b = RunBudget(deadline_s=1e-9, token=tok)
    tok.cancel()
    time.sleep(0.001)  # both tripped: the token must win
    assert b.expired() and b.cancelled()
    with pytest.raises(RunCancelled):
        b.check("group 0")


# -- admission estimator ---------------------------------------------

def _cfg(**kw):
    return RunConfig(shape=(100,), steps=8, scheme="tess", b=4,
                     **kw).normalized()


def test_estimate_scales_with_shape_dtype_and_backend():
    spec = get_stencil("heat1d")
    base = estimate_peak_bytes(spec, (100,), _cfg())
    assert base > 100 * 8  # at least one padded float64 pair
    assert estimate_peak_bytes(spec, (200,), _cfg()) > base
    # backend families that replicate buffers cost more
    assert estimate_peak_bytes(
        spec, (100,), _cfg(backend="resilient")) > base
    dist = estimate_peak_bytes(
        spec, (100,), _cfg(backend="distributed", ranks=4))
    assert dist > estimate_peak_bytes(
        spec, (100,), _cfg(backend="distributed", ranks=2))
    # verify=True adds the snapshot + reference pair
    assert estimate_peak_bytes(spec, (100,), _cfg(verify=True)) > base
    # int8 cells (life) are cheaper than float64 cells (heat2d)
    assert estimate_peak_bytes(get_stencil("life"), (100, 100), _cfg()) < \
        estimate_peak_bytes(get_stencil("heat2d"), (100, 100), _cfg())


def test_admit_refuses_over_budget_and_passes_under():
    spec = get_stencil("heat1d")
    cfg = _cfg(qos=QoSPolicy(max_memory_bytes=1))
    with pytest.raises(AdmissionRejected) as excinfo:
        admit(spec, (100,), cfg)
    assert excinfo.value.limit_bytes == 1
    assert excinfo.value.estimated_bytes > 1
    roomy = _cfg(qos=QoSPolicy(max_memory_bytes=1 << 30))
    assert 0 < admit(spec, (100,), roomy) <= 1 << 30
    # no ceiling -> admit everything without estimating
    assert admit(spec, (100,), _cfg()) == 0
    assert admit(spec, (100,), _cfg(qos=QoSPolicy(deadline_s=1.0))) == 0
