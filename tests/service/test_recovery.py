"""The headline robustness guarantee, end to end:

SIGKILL a supervisor process mid-job, restart over the same store
directory, and the job finishes — resumed from its last sealed
checkpoint, recorded as such in the journal and the run stats, and
**bit-identical** to a run that was never interrupted.

The child process runs with the default fsync'd journal discipline
(this is the one test family that must exercise the real thing).
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.service import DONE, JobStore, Supervisor, SupervisorConfig

pytestmark = pytest.mark.service

# big enough that the child cannot finish before the parent's kill
# lands (hundreds of segments), small enough to stay quick on resume
KERNEL = "heat2d"
CFG = {"shape": [48, 48], "steps": 400, "backend": "serial"}
CHECKPOINT_STEPS = 2

_CHILD = """\
import sys
from repro.service import JobStore, Supervisor, SupervisorConfig

root = sys.argv[1]
store = JobStore(root)  # fsync'd: the durable discipline under test
sup = Supervisor(store, SupervisorConfig(workers=1, checkpoint_steps={cs}))
sup.start()
job, _ = sup.submit({kernel!r}, {cfg!r})
print(job.job_id, flush=True)
sup.wait(job.job_id, timeout=600)
""".format(cs=CHECKPOINT_STEPS, kernel=KERNEL, cfg=CFG)


def _spawn(root):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD, root],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)


def test_sigkill_recovery_resumes_bit_identical(tmp_path):
    root = str(tmp_path / "store")
    proc = _spawn(root)
    try:
        job_id = proc.stdout.readline().strip()
        assert job_id.startswith("job-"), proc.stderr.read()

        # wait until at least one checkpoint is sealed — the kill then
        # provably lands mid-run, after restorable progress
        ckdir = os.path.join(root, "checkpoints", job_id)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if os.path.isdir(ckdir) and any(
                    n.endswith(".npy") for n in os.listdir(ckdir)):
                break
            if proc.poll() is not None:
                pytest.fail(f"child exited early: {proc.stderr.read()}")
            time.sleep(0.002)
        else:
            pytest.fail("no checkpoint appeared before the deadline")
        time.sleep(0.1)  # let a few more segments seal
        proc.kill()  # SIGKILL: no atexit, no cleanup, no goodbye
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.stderr.close()

    # restart over the same directory: recovery re-queues, the worker
    # resumes from the newest sealed checkpoint
    with JobStore(root) as store:
        sup = Supervisor(store, SupervisorConfig(
            workers=1, checkpoint_steps=50))
        report = sup.start()
        assert report.requeued == 1
        assert report.leases_swept >= 1
        try:
            job = sup.wait(job_id, timeout=300)
        finally:
            sup.stop()
        assert job.state == DONE
        # the resumption is journaled...
        assert job.resumed_from_step > 0
        assert sup.metrics.resumes == 1
        interior, stats = store.load_result(job_id)

    # ...and recorded in the result's trace events
    resumes = [e for e in stats["events"] if e.get("kind") == "resume"]
    assert len(resumes) == 1
    assert f"step {job.resumed_from_step}" in resumes[0]["detail"]

    # bit-identical to a run that was never interrupted
    direct = Session(get_stencil(KERNEL)).run(RunConfig.from_json(CFG))
    np.testing.assert_array_equal(interior, direct.interior)
    assert interior.tobytes() == direct.interior.tobytes()


def test_reopen_after_kill_is_idempotent(tmp_path):
    """Recovery twice over the same store changes nothing the second
    time (no leases left, nothing to re-queue)."""
    root = str(tmp_path / "store")
    with JobStore(root, fsync=False) as store:
        job, _ = store.submit(KERNEL, dict(CFG, steps=4))
        store.transition(job.job_id, "admitted")
    with JobStore(root, fsync=False) as store:
        assert store.recover().requeued == 1
    with JobStore(root, fsync=False) as store:
        second = store.recover()
        assert second.requeued == 0
        assert second.leases_swept == 0
