"""Tessellation schedules as :class:`~repro.runtime.schedule.RegionSchedule`.

The block executors in :mod:`repro.core.executor` run the tessellation
directly; this module instead *emits* the same work as a flat region
schedule, so the tessellation can be analysed, executed and simulated
through exactly the same machinery as every baseline scheme (threaded
execution, task graphs, the simulated machine).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.core.blocks import TessBlock, build_phase_plan
from repro.core.profiles import TessLattice
from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.stencils.spec import StencilSpec, region_is_empty


def _block_actions(block: TessBlock, b: int, slopes, shape,
                   tt: int, span: int, t_end: int):
    """Clipped actions of one block for the phase starting at ``tt``."""
    out = []
    for s in range(span):
        if tt + s >= t_end:
            break
        region = block.region_at(s, b, slopes, shape)
        if not region_is_empty(region):
            out.append(RegionAction(t=tt + s, region=region))
    return out


def tess_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    lattice: TessLattice,
    steps: int,
    merged: bool = False,
) -> RegionSchedule:
    """Compile ``steps`` time steps of the tessellation to a schedule.

    ``merged=False`` gives the plain §3 structure (one barrier group
    per non-empty stage per phase); ``merged=True`` gives the §4.3
    structure (``B_d``+``B_0`` diamonds fused, alternating lattice
    levels) with one fewer barrier per phase.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    shape = tuple(int(n) for n in shape)
    if any(n == 0 for n in shape):
        # empty interior: nothing to update, a valid empty schedule
        name = "tessellation-merged" if merged else "tessellation"
        return RegionSchedule(scheme=name, shape=shape, steps=steps)
    if lattice.shape != shape:
        raise ValueError(f"lattice shape {lattice.shape} != {shape}")
    b = lattice.b
    d = lattice.ndim
    slopes = tuple(p.sigma for p in lattice.profiles)
    name = "tessellation-merged" if merged else "tessellation"
    sched = RegionSchedule(scheme=name, shape=shape, steps=steps)
    if steps == 0:
        return sched
    if not merged:
        plan = build_phase_plan(lattice, slopes)
        group = 0
        tt = 0
        while tt < steps:
            span = min(b, steps - tt)
            for sp in plan.stages:
                emitted = False
                for blk in sp.blocks:
                    actions = _block_actions(
                        blk, b, slopes, shape, tt, span, steps
                    )
                    if actions:
                        sched.add(group, actions,
                                  label=f"t{tt}:stage{sp.stage}")
                        emitted = True
                if emitted:
                    group += 1
            tt += b
        return sched

    # merged variant
    levels = [lattice, lattice.shifted_to_plateaus()]
    plans = [build_phase_plan(lv, slopes) for lv in levels]
    group = 0
    # with uncut axes the lowest active stage is #uncut, not 0; it
    # plays the B_0 role in the merge (its blocks share the plateau
    # bases, and on uncut axes glued/ending dilations both clip to
    # the full extent)
    omin = sum(1 for p in lattice.profiles if not p.cores)
    # prologue: the first phase's lowest stage runs unmerged
    span0 = min(b, steps)
    emitted = False
    for blk in plans[0].stages[omin].blocks:
        actions = _block_actions(blk, b, slopes, shape, 0, span0, steps)
        if actions:
            sched.add(group, actions, label=f"t0:stage{omin}")
            emitted = True
    if emitted:
        group += 1
    level = 0
    tt = 0
    all_dims = tuple(range(d))
    while tt < steps:
        span = min(b, steps - tt)
        span_next = min(b, max(0, steps - tt - b))
        for sp in plans[level].stages[omin + 1:d]:
            emitted = False
            for blk in sp.blocks:
                actions = _block_actions(blk, b, slopes, shape, tt, span, steps)
                if actions:
                    sched.add(group, actions,
                              label=f"t{tt}:stage{sp.stage}")
                    emitted = True
            if emitted:
                group += 1
        # merged B_d + next-phase B_0, same base interval
        plats = [p.plateaus() for p in levels[level].profiles]
        emitted = False
        for base in itertools.product(*plats):
            bd = TessBlock(stage=d, glued=all_dims, base=tuple(base))
            actions = _block_actions(bd, b, slopes, shape, tt, span, steps)
            if span_next > 0:
                b0 = TessBlock(stage=0, glued=(), base=tuple(base))
                actions += _block_actions(
                    b0, b, slopes, shape, tt + b, span_next, steps
                )
            if actions:
                sched.add(group, actions, label=f"t{tt}:merged")
                emitted = True
        if emitted:
            group += 1
        level = 1 - level
        tt += b
    return sched
