"""Schedule → plan compilation: run a RegionSchedule with zero
per-run geometry work.

:func:`repro.runtime.schedule.execute_schedule` pays, for every one of
the thousands of small region actions a tiled schedule emits, a
Python-level dispatch through ``spec.apply_region``, fresh slice-tuple
construction per neighbour tap, and one temporary NumPy array per tap.
A :class:`CompiledPlan` hoists all of that to compile time:

* **parity resolution** — each action's ping-pong buffer pair
  (``t % 2`` source, ``(t+1) % 2`` destination) is a precomputed index;
* **precomputed slices** — every ``(action, offset)`` slice tuple is
  built once;
* **same-step fusion** — inside one barrier group, actions at the same
  global step are proven write-disjoint with the sanitizer's overlap
  sweep (:func:`repro.runtime.sanitizer._find_pairwise_overlap` — the
  Theorem 3.5 disjointness half), then greedily fused into maximal
  rectangles, and the small remainder is lowered to **batched**
  gather/compute/scatter updates over flat index arrays (one ufunc
  dispatch sequence for hundreds of actions);
* **allocation-free kernels** — the per-unit update runs through
  :mod:`repro.engine.kernels` into reusable per-thread scratch.

Execution order inside a group is lowered to ascending global step,
which is a valid interleaving of the group's task orders whenever each
task's actions are non-decreasing in ``t`` (checked at compile time;
groups failing the check, and declared-redundant schedules, fall back
to the original task order with per-action compiled slices).  Reads at
step ``t`` live in the ``t % 2`` buffer while same-step writes land in
the other parity, so same-step units can run in any order once their
writes are disjoint.

Results are bit-identical to ``execute_schedule`` (or
``execute_overlapped`` for ghost-zone schedules): per grid point, the
exact float operation sequence of the naive operator is preserved —
fusion and batching only change array *layout*, never per-element
arithmetic (see :mod:`repro.engine.kernels`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.kernels import (
    ScratchArena,
    life_batch,
    life_batch_many,
    life_slices,
    linear_batch,
    linear_batch_many,
    linear_slices,
    thread_arena,
)
from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.stencils.grid import Grid
from repro.stencils.operators import (
    GameOfLifeOperator,
    LinearStencilOperator,
)
from repro.stencils.spec import (
    Region,
    StencilSpec,
    clip_region,
    region_is_empty,
    region_size,
)
from repro.stencils.staged import stage_scratch, stage_timings

__all__ = ["CompiledPlan", "PlanStats", "compile_plan", "execute_plan"]


# ---------------------------------------------------------------------------
# geometry helpers
# ---------------------------------------------------------------------------

def _element_strides(padded_shape: Sequence[int]) -> Tuple[int, ...]:
    """C-order strides of a padded buffer, in elements."""
    d = len(padded_shape)
    strides = [1] * d
    for j in range(d - 2, -1, -1):
        strides[j] = strides[j + 1] * int(padded_shape[j + 1])
    return tuple(strides)


def _region_slices(region: Region, halo: Sequence[int],
                   offset: Sequence[int]) -> Tuple[slice, ...]:
    return tuple(
        slice(lo + h + o, hi + h + o)
        for (lo, hi), h, o in zip(region, halo, offset)
    )


def _region_flat_indices(region: Region, halo: Sequence[int],
                         strides: Sequence[int]) -> np.ndarray:
    """Flat (raveled padded-array) indices of a region's cells."""
    acc: Optional[np.ndarray] = None
    for (lo, hi), h, st in zip(region, halo, strides):
        ax = np.arange(lo + h, hi + h, dtype=np.intp) * st
        acc = ax if acc is None else (acc[..., None] + ax)
    assert acc is not None
    return np.ascontiguousarray(acc.ravel())


def _fuse_rectangles(regions: List[Region]) -> List[Region]:
    """Greedily merge touching rectangles into maximal ones.

    Two rectangles merge when they agree on every axis but one and are
    adjacent (``hi == lo``) along that axis.  Input rectangles must be
    pairwise disjoint; repeated axis passes run to a fixpoint.
    """
    if len(regions) < 2:
        return list(regions)
    d = len(regions[0])
    regs = list(regions)
    changed = True
    while changed:
        changed = False
        for axis in range(d):
            chains: Dict[tuple, List[Region]] = {}
            for r in regs:
                key = r[:axis] + r[axis + 1:]
                chains.setdefault(key, []).append(r)
            merged: List[Region] = []
            for rs in chains.values():
                rs.sort(key=lambda r: r[axis][0])
                cur = rs[0]
                for r in rs[1:]:
                    if r[axis][0] == cur[axis][1]:
                        cur = (cur[:axis] + ((cur[axis][0], r[axis][1]),)
                               + cur[axis + 1:])
                        changed = True
                    else:
                        merged.append(cur)
                        cur = r
                merged.append(cur)
            regs = merged
    return regs


# ---------------------------------------------------------------------------
# execution units
# ---------------------------------------------------------------------------

_ALL = (slice(None),)


class _LinearSliceOp:
    """One (possibly fused) rectangle of a linear stencil."""

    __slots__ = ("sp", "dp", "t", "region", "out_sl", "in_sls", "coeffs")

    def __init__(self, t, region, out_sl, in_sls, coeffs):
        self.t = t
        self.sp = t % 2
        self.dp = (t + 1) % 2
        self.region = region
        self.out_sl = out_sl
        self.in_sls = in_sls
        self.coeffs = coeffs

    def writes(self):
        return [(self.t, self.region)]

    def run(self, bufs, flats, spec, arena):
        linear_slices(bufs[self.sp], bufs[self.dp], self.out_sl,
                      self.in_sls, self.coeffs, arena)

    def run_batched(self, bufs, flats, spec, arena):
        # the same slice kernel over [N, ...] buffers: a leading
        # slice(None) applies the rectangle to every instance at once
        linear_slices(bufs[self.sp], bufs[self.dp], _ALL + self.out_sl,
                      tuple(_ALL + sl for sl in self.in_sls),
                      self.coeffs, arena)


class _LifeSliceOp:
    """One (possibly fused) rectangle of the Game-of-Life rule."""

    __slots__ = ("sp", "dp", "t", "region", "out_sl", "in_sls", "centre_sl")

    def __init__(self, t, region, out_sl, in_sls, centre_sl):
        self.t = t
        self.sp = t % 2
        self.dp = (t + 1) % 2
        self.region = region
        self.out_sl = out_sl
        self.in_sls = in_sls
        self.centre_sl = centre_sl

    def writes(self):
        return [(self.t, self.region)]

    def run(self, bufs, flats, spec, arena):
        life_slices(bufs[self.sp], bufs[self.dp], self.out_sl,
                    self.in_sls, self.centre_sl, arena)

    def run_batched(self, bufs, flats, spec, arena):
        life_slices(bufs[self.sp], bufs[self.dp], _ALL + self.out_sl,
                    tuple(_ALL + sl for sl in self.in_sls),
                    _ALL + self.centre_sl, arena)


class _GenericSliceOp:
    """Fallback for operators the engine has no specialised kernel for."""

    __slots__ = ("sp", "dp", "t", "region")

    def __init__(self, t, region):
        self.t = t
        self.sp = t % 2
        self.dp = (t + 1) % 2
        self.region = region

    def writes(self):
        return [(self.t, self.region)]

    def run(self, bufs, flats, spec, arena):
        spec.operator.apply(bufs[self.sp], bufs[self.dp], self.region,
                            spec.halo)


class _LinearBatch:
    """All small same-step rectangles of one group as one gather/scatter."""

    __slots__ = ("sp", "dp", "t", "regions", "idx", "off_flats", "coeffs")

    def __init__(self, t, regions, idx, off_flats, coeffs):
        self.t = t
        self.sp = t % 2
        self.dp = (t + 1) % 2
        self.regions = regions
        self.idx = idx
        self.off_flats = off_flats
        self.coeffs = coeffs

    def writes(self):
        return [(self.t, r) for r in self.regions]

    def run(self, bufs, flats, spec, arena):
        linear_batch(flats[self.sp], flats[self.dp], self.idx,
                     self.off_flats, self.coeffs, arena)

    def run_batched(self, bufs, flats, spec, arena):
        linear_batch_many(flats[self.sp], flats[self.dp], self.idx,
                          self.off_flats, self.coeffs, arena)


class _LifeBatch:
    __slots__ = ("sp", "dp", "t", "regions", "idx", "off_flats", "centre_off")

    def __init__(self, t, regions, idx, off_flats, centre_off):
        self.t = t
        self.sp = t % 2
        self.dp = (t + 1) % 2
        self.regions = regions
        self.idx = idx
        self.off_flats = off_flats
        self.centre_off = centre_off

    def writes(self):
        return [(self.t, r) for r in self.regions]

    def run(self, bufs, flats, spec, arena):
        life_batch(flats[self.sp], flats[self.dp], self.idx,
                   self.off_flats, self.centre_off, arena)

    def run_batched(self, bufs, flats, spec, arena):
        life_batch_many(flats[self.sp], flats[self.dp], self.idx,
                        self.off_flats, self.centre_off, arena)


class _StagedSliceOp:
    """One rectangle of a staged system: every stage, grown and clipped.

    The grown intermediates go through the calling thread's
    zero-exterior scratch (:func:`repro.stencils.staged.stage_scratch`);
    only ``region`` of each field is copied into the destination
    parity, so a schedule layer's write-disjointness is exactly the
    spatial disjointness of its raw regions, same as a plain spec.
    """

    __slots__ = ("sp", "dp", "t", "region", "stage_ops", "copy_sls",
                 "pad_shape")

    def __init__(self, t, region, stage_ops, copy_sls, pad_shape):
        self.t = t
        self.sp = t % 2
        self.dp = (t + 1) % 2
        self.region = region
        self.stage_ops = stage_ops      # (stage, out_sl, ((new, view_sl),))
        self.copy_sls = copy_sls        # one (field,) + region slice per field
        self.pad_shape = pad_shape

    def writes(self):
        return [(self.t, self.region)]

    def _apply(self, bufs, spec, arena, pre_shape, pre_sl):
        scr = stage_scratch(pre_shape + self.pad_shape, spec.dtype)
        src = bufs[self.sp]
        dst = bufs[self.dp]
        timed = stage_timings.armed
        for stage, out_sl, view_sls in self.stage_ops:
            t0 = time.perf_counter() if timed else 0.0
            views = [
                (scr if new else src)[pre_sl + sl] for new, sl in view_sls
            ]
            stage.apply_stage(scr[pre_sl + out_sl], views, arena)
            if timed:
                stage_timings.record(stage.name, time.perf_counter() - t0)
        for sl in self.copy_sls:
            np.copyto(dst[pre_sl + sl], scr[pre_sl + sl])

    def run(self, bufs, flats, spec, arena):
        self._apply(bufs, spec, arena, (), ())

    def run_batched(self, bufs, flats, spec, arena):
        self._apply(bufs, spec, arena, (bufs[0].shape[0],), _ALL)


class _StagedBatch:
    """All small same-step rectangles of one staged group, gathered.

    Per stage: one position array (union of the rectangles' clipped
    grown regions, in flat spatial-buffer indices), one gather per read
    tap (shift = flat offset + field base), one elementwise
    ``apply_stage`` on the gathered 1-D arrays, one scatter into the
    flat scratch.  Overlapping grown regions scatter duplicate
    positions with *identical* values (the stage output is a pure
    function of the source parity), so the duplicate writes are benign.
    The final per-field copy touches only the raw (pairwise-disjoint)
    rectangles.
    """

    __slots__ = ("sp", "dp", "t", "regions", "stage_ops", "idx",
                 "num_fields", "field_size", "pad_shape")

    def __init__(self, t, regions, stage_ops, copy_idx, num_fields,
                 field_size, pad_shape):
        self.t = t
        self.sp = t % 2
        self.dp = (t + 1) % 2
        self.regions = regions
        self.stage_ops = stage_ops      # (stage, pos, wshift, ((new, shift),))
        self.idx = copy_idx             # flat spatial indices of the raw rects
        self.num_fields = num_fields
        self.field_size = field_size
        self.pad_shape = pad_shape

    def writes(self):
        return [(self.t, r) for r in self.regions]

    def run(self, bufs, flats, spec, arena):
        scr_flat = stage_scratch(self.pad_shape, spec.dtype).reshape(-1)
        src_flat = flats[self.sp]
        dst_flat = flats[self.dp]
        timed = stage_timings.armed
        for stage, pos, wshift, shifts in self.stage_ops:
            t0 = time.perf_counter() if timed else 0.0
            ish = arena.get("sg_idx", pos.size, np.intp)
            gathered = []
            for i, (new, shift) in enumerate(shifts):
                np.add(pos, shift, out=ish)
                g = arena.get(f"sg{i}", pos.size, spec.dtype)
                np.take(scr_flat if new else src_flat, ish, out=g)
                gathered.append(g)
            out = arena.get("sg_out", pos.size, spec.dtype)
            stage.apply_stage(out, gathered, arena)
            np.add(pos, wshift, out=ish)
            scr_flat[ish] = out
            if timed:
                stage_timings.record(stage.name, time.perf_counter() - t0)
        ish = arena.get("sg_idx", self.idx.size, np.intp)
        g = arena.get("sg_copy", self.idx.size, spec.dtype)
        for f in range(self.num_fields):
            np.add(self.idx, f * self.field_size, out=ish)
            np.take(scr_flat, ish, out=g)
            dst_flat[ish] = g

    def run_batched(self, bufs, flats, spec, arena):
        n = bufs[0].shape[0]
        scr2 = stage_scratch((n,) + self.pad_shape, spec.dtype).reshape(n, -1)
        src2 = flats[self.sp]
        dst2 = flats[self.dp]
        timed = stage_timings.armed
        for stage, pos, wshift, shifts in self.stage_ops:
            t0 = time.perf_counter() if timed else 0.0
            ish = arena.get("sg_idx", pos.size, np.intp)
            gathered = []
            for i, (new, shift) in enumerate(shifts):
                np.add(pos, shift, out=ish)
                g = arena.get(f"sgm{i}", n * pos.size,
                              spec.dtype).reshape(n, pos.size)
                np.take(scr2 if new else src2, ish, axis=1, out=g)
                gathered.append(g)
            out = arena.get("sgm_out", n * pos.size,
                            spec.dtype).reshape(n, pos.size)
            stage.apply_stage(out, gathered, arena)
            np.add(pos, wshift, out=ish)
            scr2[:, ish] = out
            if timed:
                stage_timings.record(stage.name, time.perf_counter() - t0)
        ish = arena.get("sg_idx", self.idx.size, np.intp)
        for f in range(self.num_fields):
            np.add(self.idx, f * self.field_size, out=ish)
            dst2[:, ish] = scr2[:, ish]


class _PrivateTask:
    """One ghost-zone task: snapshot box, local steps, core write-back.

    Mirrors :func:`repro.baselines.overlapped.execute_overlapped`
    exactly (same snapshot, same local iteration, same write-back) with
    every slice precomputed.
    """

    __slots__ = ("t_start", "snap_sl", "pad_shape", "local_ops",
                 "wb_parity", "wb_dst_sl", "wb_local_sl", "actions")

    def __init__(self, t_start, snap_sl, pad_shape, local_ops,
                 wb_parity, wb_dst_sl, wb_local_sl, actions):
        self.t_start = t_start
        self.snap_sl = snap_sl
        self.pad_shape = pad_shape
        self.local_ops = local_ops          # (sp, dp, local_region)
        self.wb_parity = wb_parity
        self.wb_dst_sl = wb_dst_sl
        self.wb_local_sl = wb_local_sl
        self.actions = actions              # [(t, region)] for as_schedule

    def snapshot(self, bufs):
        buf_a = bufs[self.t_start % 2][self.snap_sl].copy()
        return [buf_a, buf_a.copy()]

    def iterate(self, pair, spec):
        for sp, dp, local_region in self.local_ops:
            spec.operator.apply(pair[sp], pair[dp], local_region, spec.halo)

    def write_back(self, pair, bufs):
        bufs[self.wb_parity][self.wb_dst_sl] = pair[self.wb_parity][self.wb_local_sl]


class _PrivateGroup:
    """One barrier group of private tasks (two-pass ghost-zone discipline)."""

    __slots__ = ("t", "ptasks")

    def __init__(self, ptasks):
        self.ptasks = ptasks
        self.t = min((pt.t_start for pt in ptasks), default=0)

    def writes(self):
        return [w for pt in self.ptasks for w in pt.actions]

    def run(self, bufs, flats, spec, arena):
        snaps = [pt.snapshot(bufs) for pt in self.ptasks]
        for pt, pair in zip(self.ptasks, snaps):
            pt.iterate(pair, spec)
            pt.write_back(pair, bufs)


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------

@dataclass
class PlanStats:
    """What compilation did (consumed by tests, the CLI and the bench)."""

    tasks: int = 0
    actions: int = 0
    groups: int = 0
    stream_units: int = 0
    batches: int = 0
    batched_actions: int = 0
    sliced_actions: int = 0
    fused_actions: int = 0       #: actions removed by rectangle fusion
    fallback_groups: int = 0     #: groups compiled without reordering
    index_bytes: int = 0
    compile_seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.stream_units} units ({self.batches} batches covering "
            f"{self.batched_actions} actions, {self.sliced_actions} slice "
            f"ops, {self.fused_actions} fused away) from {self.actions} "
            f"actions / {self.tasks} tasks / {self.groups} groups; "
            f"{self.index_bytes / 1e6:.1f} MB indices, compiled in "
            f"{self.compile_seconds * 1e3:.1f} ms"
        )


@dataclass
class CompiledPlan:
    """A RegionSchedule lowered to prebuilt execution units.

    ``streams[i]`` is the ordered unit list of barrier group
    ``group_ids[i]``; :func:`execute_plan` runs them in order.  The
    per-task view used by the threaded/resilient executors is compiled
    lazily by :meth:`task_units`.
    """

    scheme: str
    shape: Tuple[int, ...]
    steps: int
    spec: StencilSpec
    group_ids: List[int]
    streams: List[list]
    private: bool
    stats: PlanStats
    schedule: RegionSchedule = field(repr=False)
    _task_units: Dict[int, List[list]] = field(default_factory=dict,
                                               repr=False)

    @property
    def num_groups(self) -> int:
        return len(self.group_ids)

    def task_units(self, group_index: int) -> List[list]:
        """Per-task compiled units of one group (for threaded execution).

        Tasks keep their original action order — no cross-task fusion —
        so the barrier-group independence contract is untouched.
        """
        cached = self._task_units.get(group_index)
        if cached is not None:
            return cached
        gid = self.group_ids[group_index]
        tasks = self.schedule.groups()[gid]
        ctx = _CompileCtx(self.spec, self.shape)
        units = [
            [ctx.slice_unit(a.t, a.region) for a in task.actions
             if not region_is_empty(a.region)]
            for task in tasks
        ]
        self._task_units[group_index] = units
        return units

    def execute(self, grid: Grid, arena: Optional[ScratchArena] = None
                ) -> np.ndarray:
        return _execute_plan(self, grid, arena=arena)

    def as_schedule(self) -> RegionSchedule:
        """Re-express the compiled stream as a RegionSchedule.

        Each same-step layer of each stream becomes one barrier group
        whose tasks are the layer's units, so the sanitizer can prove
        that fusion/batching preserved the exact-tessellation and
        race-freedom invariants (finer barriers are strictly more
        conservative than the original grouping).
        """
        out = RegionSchedule(
            scheme=f"{self.scheme}+compiled", shape=self.shape,
            steps=self.steps, private_tasks=self.private,
            redundant=self.schedule.redundant,
        )
        group = 0
        for stream in self.streams:
            if not stream:
                continue
            if self.private:
                for unit in stream:
                    for pt in unit.ptasks:
                        out.add(group, [RegionAction(t=t, region=r)
                                        for t, r in pt.actions])
                group += 1
                continue
            last_t = None
            for unit in stream:
                if last_t is not None and unit.t != last_t:
                    group += 1
                last_t = unit.t
                out.add(group, [RegionAction(t=t, region=r)
                                for t, r in unit.writes()])
            group += 1
        return out


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------

class _CompileCtx:
    """Shared geometry/kernel context of one compilation."""

    def __init__(self, spec: StencilSpec, shape: Sequence[int]):
        self.spec = spec
        self.shape = tuple(int(n) for n in shape)
        self.halo = spec.halo
        self.padded = spec.padded_shape(shape)
        self.strides = _element_strides(self.padded)
        op = spec.operator
        self.kind = "generic"
        if getattr(spec, "is_staged", False):
            self.kind = "staged"
            # regions stay spatial: strides/flat-index math must ignore
            # the leading field axis of the padded buffer
            self.strides = _element_strides(self.padded[1:])
            self.num_fields = len(spec.fields)
            self.field_size = 1
            for n in self.padded[1:]:
                self.field_size *= int(n)
        elif isinstance(op, GameOfLifeOperator):
            self.kind = "life"
            self.neigh_offs = tuple(o for o in op.offsets if o != (0, 0))
            self.neigh_flats = tuple(
                sum(c * st for c, st in zip(o, self.strides))
                for o in self.neigh_offs
            )
            self.centre_flat = 0
        elif type(op) is LinearStencilOperator:
            self.kind = "linear"
            self.coeffs = op.coeffs
            self.offs = op.offsets
            self.off_flats = tuple(
                sum(c * st for c, st in zip(o, self.strides))
                for o in self.offs
            )

    def _grown_regions(self, region: Region):
        """Per-stage clipped grown regions of one raw region."""
        op = self.spec.operator
        return [
            clip_region(
                tuple((lo - gr, hi + gr)
                      for (lo, hi), gr in zip(region, grow)),
                self.shape,
            )
            for grow in op.grow
        ]

    def slice_unit(self, t: int, region: Region):
        if self.kind == "staged":
            op = self.spec.operator
            zero = (0,) * len(region)
            stage_ops = []
            for stage, g in zip(op.stages, self._grown_regions(region)):
                out_sl = ((op.field_index[stage.writes],)
                          + _region_slices(g, self.halo, zero))
                view_sls = tuple(
                    (new, (op.field_index[f],)
                     + _region_slices(g, self.halo, off))
                    for f, off, new in stage.reads
                )
                stage_ops.append((stage, out_sl, view_sls))
            copy_sl = _region_slices(region, self.halo, zero)
            return _StagedSliceOp(
                t, region, tuple(stage_ops),
                tuple((f,) + copy_sl for f in range(self.num_fields)),
                self.padded,
            )
        if self.kind == "linear":
            return _LinearSliceOp(
                t, region,
                _region_slices(region, self.halo, (0,) * len(region)),
                tuple(_region_slices(region, self.halo, o)
                      for o in self.offs),
                self.coeffs,
            )
        if self.kind == "life":
            return _LifeSliceOp(
                t, region,
                _region_slices(region, self.halo, (0, 0)),
                tuple(_region_slices(region, self.halo, o)
                      for o in self.neigh_offs),
                _region_slices(region, self.halo, (0, 0)),
            )
        return _GenericSliceOp(t, region)

    def batch_unit(self, t: int, regions: List[Region]):
        if self.kind == "staged":
            op = self.spec.operator
            stage_ops = []
            for si, stage in enumerate(op.stages):
                pos = np.concatenate([
                    _region_flat_indices(self._grown_regions(r)[si],
                                         self.halo, self.strides)
                    for r in regions
                ]) if regions else np.empty(0, dtype=np.intp)
                wshift = op.field_index[stage.writes] * self.field_size
                shifts = tuple(
                    (new,
                     sum(c * st for c, st in zip(off, self.strides))
                     + op.field_index[f] * self.field_size)
                    for f, off, new in stage.reads
                )
                stage_ops.append((stage, pos, wshift, shifts))
            copy_idx = np.concatenate([
                _region_flat_indices(r, self.halo, self.strides)
                for r in regions
            ]) if regions else np.empty(0, dtype=np.intp)
            return _StagedBatch(t, regions, tuple(stage_ops), copy_idx,
                                self.num_fields, self.field_size,
                                self.padded)
        if self.kind not in ("linear", "life"):
            return None
        idx = np.concatenate([
            _region_flat_indices(r, self.halo, self.strides)
            for r in regions
        ]) if regions else np.empty(0, dtype=np.intp)
        if self.kind == "linear":
            return _LinearBatch(t, regions, idx, self.off_flats, self.coeffs)
        return _LifeBatch(t, regions, idx, self.neigh_flats,
                          self.centre_flat)


def _tasks_time_monotone(tasks) -> bool:
    for task in tasks:
        last = None
        for a in task.actions:
            if region_is_empty(a.region):
                continue
            if last is not None and a.t < last:
                return False
            last = a.t
    return True


def _layer_write_disjoint(regions: List[Region], ctx: _CompileCtx) -> bool:
    """Exact same-step write-disjointness (Theorem 3.5's disjoint half).

    Small layers use the sanitizer's pairwise interval sweep
    (:func:`repro.runtime.sanitizer._find_pairwise_overlap`); large
    layers use an equivalent exact check — two rectangles overlap iff
    their flat cell-index sets intersect, i.e. iff the concatenated
    sorted index array has a duplicate — which is vectorised and keeps
    compilation linear in the layer's point count.
    """
    if len(regions) < 2:
        return True
    if len(regions) <= 64:
        from repro.runtime.sanitizer import _find_pairwise_overlap

        return _find_pairwise_overlap(
            [(r, i) for i, r in enumerate(regions)]) is None
    idx = np.concatenate([
        _region_flat_indices(r, ctx.halo, ctx.strides) for r in regions
    ])
    idx.sort(kind="stable")
    return not bool(np.any(idx[1:] == idx[:-1]))


def compile_plan(
    spec: StencilSpec,
    schedule: RegionSchedule,
    batch_threshold: int = 4096,
    fuse: bool = True,
) -> CompiledPlan:
    """Lower a schedule to a :class:`CompiledPlan`.

    ``batch_threshold``: rectangles with fewer points are gathered into
    batched flat-index updates; larger ones keep (precompiled) slice
    kernels, which move less memory per point.  ``fuse=False`` disables
    both rectangle fusion and batching (per-action slice ops only) —
    the debugging/fallback configuration.
    """
    if spec.is_periodic:
        raise ValueError("compiled plans assume non-periodic boundaries")
    if schedule.private_tasks and getattr(spec, "is_staged", False):
        # _PrivateTask snapshots are spatial-only slices of one buffer;
        # the ghost-zone discipline has no field axis — refuse rather
        # than mis-slice
        raise ValueError(
            "ghost-zone (private-task) schedules do not support staged "
            "systems"
        )
    if len(schedule.shape) != spec.ndim:
        raise ValueError(
            f"schedule rank {len(schedule.shape)} != stencil ndim {spec.ndim}"
        )
    t0 = time.perf_counter()
    stats = PlanStats(tasks=len(schedule.tasks), groups=0)
    ctx = _CompileCtx(spec, schedule.shape)
    groups = schedule.groups()
    gids = sorted(groups)
    stats.groups = len(gids)
    streams: List[list] = []
    if schedule.private_tasks:
        for gid in gids:
            ptasks = [_compile_private_task(ctx, task)
                      for task in groups[gid]]
            ptasks = [pt for pt in ptasks if pt is not None]
            stats.actions += sum(len(pt.actions) for pt in ptasks)
            streams.append([_PrivateGroup(ptasks)] if ptasks else [])
        stats.stream_units = sum(len(s) for s in streams)
        stats.compile_seconds = time.perf_counter() - t0
        return CompiledPlan(
            scheme=schedule.scheme, shape=schedule.shape,
            steps=schedule.steps, spec=spec, group_ids=gids,
            streams=streams, private=True, stats=stats, schedule=schedule,
        )

    for gid in gids:
        tasks = groups[gid]
        acts = [(a.t, a.region) for task in tasks for a in task.actions
                if not region_is_empty(a.region)]
        stats.actions += len(acts)
        by_t: Dict[int, List[Region]] = {}
        for t, r in acts:
            by_t.setdefault(t, []).append(r)
        reorder = (
            fuse
            and not schedule.redundant
            and _tasks_time_monotone(tasks)
            and all(_layer_write_disjoint(rs, ctx) for rs in by_t.values())
        )
        stream: list = []
        if not reorder:
            # original task order, per-action compiled slices: exactly
            # execute_schedule's interleaving with the geometry hoisted
            stats.fallback_groups += 1
            for task in tasks:
                for a in task.actions:
                    if region_is_empty(a.region):
                        continue
                    stream.append(ctx.slice_unit(a.t, a.region))
            stats.sliced_actions += len(stream)
            streams.append(stream)
            continue
        for t in sorted(by_t):
            regions = by_t[t]
            fused = _fuse_rectangles(regions)
            stats.fused_actions += len(regions) - len(fused)
            small = [r for r in fused if region_size(r) < batch_threshold]
            large = [r for r in fused if region_size(r) >= batch_threshold]
            for r in large:
                stream.append(ctx.slice_unit(t, r))
                stats.sliced_actions += 1
            if small:
                batch = ctx.batch_unit(t, small)
                if batch is None:      # no batched kernel: slice them
                    for r in small:
                        stream.append(ctx.slice_unit(t, r))
                        stats.sliced_actions += 1
                else:
                    stream.append(batch)
                    stats.batches += 1
                    stats.batched_actions += len(small)
                    stats.index_bytes += batch.idx.nbytes
        streams.append(stream)
    stats.stream_units = sum(len(s) for s in streams)
    stats.compile_seconds = time.perf_counter() - t0
    return CompiledPlan(
        scheme=schedule.scheme, shape=schedule.shape, steps=schedule.steps,
        spec=spec, group_ids=gids, streams=streams, private=False,
        stats=stats, schedule=schedule,
    )


def _compile_private_task(ctx: _CompileCtx, task) -> Optional[_PrivateTask]:
    acts = [a for a in task.actions if not region_is_empty(a.region)]
    if not acts:
        return None
    halo = ctx.halo
    t_start = acts[0].t
    inbox = acts[0].region
    offs = tuple(lo for lo, _ in inbox)
    pad_shape = tuple((hi - lo) + 2 * h for (lo, hi), h in zip(inbox, halo))
    snap_sl = tuple(slice(lo, hi + 2 * h)
                    for (lo, hi), h in zip(inbox, halo))
    local_ops = []
    for a in acts:
        local = tuple((lo - o, hi - o)
                      for (lo, hi), o in zip(a.region, offs))
        local_ops.append((a.t % 2, (a.t + 1) % 2, local))
    last = acts[-1]
    t_done = last.t + 1
    core = last.region
    wb_dst_sl = tuple(slice(lo + h, hi + h)
                      for (lo, hi), h in zip(core, halo))
    wb_local_sl = tuple(slice(lo - o + h, hi - o + h)
                        for (lo, hi), o, h in zip(core, offs, halo))
    return _PrivateTask(
        t_start=t_start, snap_sl=snap_sl, pad_shape=pad_shape,
        local_ops=local_ops, wb_parity=t_done % 2, wb_dst_sl=wb_dst_sl,
        wb_local_sl=wb_local_sl,
        actions=[(a.t, a.region) for a in acts],
    )


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def _execute_plan(plan: CompiledPlan, grid: Grid,
                  arena: Optional[ScratchArena] = None,
                  budget=None) -> np.ndarray:
    """Compiled-stream execution (the ``compiled`` backend's engine).

    ``budget`` is the run-level :class:`~repro.runtime.qos.RunBudget`;
    when armed it is checked at entry and between group streams (the
    compiled path's barrier boundaries).
    """
    if grid.shape != plan.shape:
        raise ValueError(
            f"grid shape {grid.shape} != plan shape {plan.shape}"
        )
    bufs = grid.buffers
    if not all(b.flags.c_contiguous for b in bufs):
        raise ValueError("compiled plans require C-contiguous grid buffers")
    flats = (bufs[0].reshape(-1), bufs[1].reshape(-1))
    spec = plan.spec
    if arena is None:
        arena = thread_arena()
    if budget is not None:
        budget.check(f"{plan.scheme} plan entry")
    for si, stream in enumerate(plan.streams):
        if budget is not None:
            budget.check(f"stream {si}")
        for unit in stream:
            unit.run(bufs, flats, spec, arena)
    return grid.interior(plan.steps)


def execute_plan(plan: CompiledPlan, grid: Grid,
                 arena: Optional[ScratchArena] = None) -> np.ndarray:
    """Run a compiled plan sequentially; returns the final interior.

    Bit-identical to ``execute_schedule`` on the plan's source schedule
    (``execute_overlapped`` for ghost-zone plans).

    .. deprecated:: use ``repro.api.run`` / ``Session.execute`` with
       ``backend="compiled"`` instead.
    """
    from repro.api import RunConfig, Session, warn_legacy

    warn_legacy("execute_plan", "repro.api.run(backend='compiled')")
    config = RunConfig(backend="compiled", engine="compiled")
    if arena is not None:
        config.options["arena"] = arena
    result = Session(plan.spec).execute(grid, config=config, plan=plan)
    return result.interior


def run_units(units, grid: Grid, spec: StencilSpec,
              arena: Optional[ScratchArena] = None) -> None:
    """Run one task's compiled units (threaded/resilient task body)."""
    bufs = grid.buffers
    flats = (bufs[0].reshape(-1), bufs[1].reshape(-1))
    if arena is None:
        arena = thread_arena()
    for unit in units:
        unit.run(bufs, flats, spec, arena)
