"""Execution tracing for real (NumPy) schedule runs.

Wraps schedule execution with per-task wall-clock measurement so
profiles of the Python substrate can be inspected: time per barrier
group, per scheme, task-size versus cost scatter.  The bench suite
uses it to report where the NumPy dispatch overhead sits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.runtime.schedule import RegionSchedule
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


@dataclass
class TaskTrace:
    group: int
    label: str
    points: int
    actions: int
    seconds: float


@dataclass
class RuntimeEvent:
    """One resilience-layer event (retry, checkpoint, restore, guard…).

    Recorded by :func:`repro.runtime.resilience.execute_resilient`,
    the distributed simulator and the elastic process coordinator
    (:mod:`repro.distributed.elastic`) so traces expose where
    fault-tolerance overhead sits, next to the per-task compute
    timings.  The elastic coordinator adds: ``heartbeat`` (per-rank
    beacon summary), ``retry`` (worker-reported retransmits),
    ``respawn``, ``commit``, ``failure`` (a worker gave up on an
    exchange), ``watchdog`` (liveness verdicts) — and reuses
    ``restore`` for phase abort + checkpoint restore.  The QoS
    fallback chain (:mod:`repro.api.fallback`) adds ``fallback``: one
    event per degradation hop.
    """

    kind: str  #: "retry" | "checkpoint" | "restore" | "degrade" | "guard" | "exchange-fault" | "sanitize" | "violation" | "heartbeat" | "respawn" | "commit" | "failure" | "watchdog" | "fallback"
    group: int
    label: str = ""
    seconds: float = 0.0
    detail: str = ""


@dataclass
class ExecutionTrace:
    scheme: str
    tasks: List[TaskTrace] = field(default_factory=list)
    events: List[RuntimeEvent] = field(default_factory=list)

    def record_event(self, kind: str, group: int, label: str = "",
                     seconds: float = 0.0, detail: str = "") -> None:
        self.events.append(RuntimeEvent(kind=kind, group=group, label=label,
                                        seconds=seconds, detail=detail))

    def event_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def resilience_seconds(self) -> float:
        """Wall-clock attributed to the resilience layer (not compute)."""
        return sum(e.seconds for e in self.events)

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.tasks)

    def group_seconds(self) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for t in self.tasks:
            out[t.group] = out.get(t.group, 0.0) + t.seconds
        return out

    def points_per_second(self) -> float:
        pts = sum(t.points for t in self.tasks)
        s = self.total_seconds
        return pts / s if s > 0 else 0.0

    def overhead_estimate(self) -> Tuple[float, float]:
        """Least-squares fit ``seconds ≈ a + c·points`` per task.

        Returns ``(a, c)``: the per-task overhead and per-point cost of
        this substrate — the real-world analogue of the machine model's
        ``task_overhead_s`` and flop rate.
        """
        if len(self.tasks) < 2:
            return (0.0, 0.0)
        x = np.array([t.points for t in self.tasks], dtype=np.float64)
        y = np.array([t.seconds for t in self.tasks], dtype=np.float64)
        a_mat = np.stack([np.ones_like(x), x], axis=1)
        coef, *_ = np.linalg.lstsq(a_mat, y, rcond=None)
        return float(coef[0]), float(coef[1])


def traced_execute(spec: StencilSpec, grid: Grid,
                   schedule: RegionSchedule) -> Tuple[np.ndarray, ExecutionTrace]:
    """Sequential execution with per-task timing."""
    if spec.is_periodic:
        raise ValueError("region schedules assume non-periodic boundaries")
    if schedule.private_tasks:
        raise ValueError("tracing supports shared-buffer schedules only")
    trace = ExecutionTrace(scheme=schedule.scheme)
    for gid in sorted(schedule.groups()):
        for task in schedule.groups()[gid]:
            t0 = time.perf_counter()
            pts = 0
            for a in task.actions:
                spec.apply_region(grid.at(a.t), grid.at(a.t + 1), a.region)
                pts += a.points
            trace.tasks.append(TaskTrace(
                group=gid, label=task.label, points=pts,
                actions=len(task.actions),
                seconds=time.perf_counter() - t0,
            ))
    return grid.interior(schedule.steps), trace
