"""Parity matrix: every registered backend x every builder scheme.

Each supported cell must reproduce the naive reference sweep
*bit-identically* (``np.array_equal``, not allclose: every executor
performs the same per-point arithmetic, only the traversal order
differs).  Each unsupported cell must refuse with a typed
:class:`BackendUnsupported` carrying the backend name and a reason —
never a silent wrong answer, never an untyped crash.

The matrix includes the two degenerate axes the executors historically
disagreed on:

* ``steps=0`` — the empty schedule (the result is the initial grid);
* a truncated final phase (``steps`` not a multiple of the time-tile
  depth ``b``) on a truncated shape (grid size not a multiple of the
  block period, so the lattice carries a stretched block).
"""

import numpy as np
import pytest

from repro.api import RunConfig, run
from repro.api.backends import BackendUnsupported, backend_names
from repro.api.builder import SCHEMES
from repro.stencils import Grid, heat1d, reference_sweep

pytestmark = pytest.mark.api

#: grid size deliberately not a multiple of the block period (b=4) so
#: every lattice in the matrix carries one stretched block per axis
SHAPE = (50,)
B = 4
#: 0 = empty schedule; 6 = one full phase of depth 4 + a truncated
#: phase of depth 2
STEPS_CASES = (0, 6)

#: which schemes each backend must run; every other cell must refuse.
#: This table is the API contract — changing it is an API change.
SUPPORTED = {
    "serial": set(SCHEMES) - {"overlapped"},
    "compiled": set(SCHEMES),
    "batched": set(SCHEMES) - {"overlapped"},
    "threaded": set(SCHEMES) - {"overlapped"},
    "resilient": set(SCHEMES) - {"overlapped"},
    "distributed": {"tess"},
    "elastic": {"tess"},
    "baseline:pointwise": {"tess", "tess-unmerged"},
    "baseline:blocked": {"tess", "tess-unmerged"},
    "baseline:merged": {"tess"},
    "baseline:overlapped": {"overlapped"},
}

#: staged systems: the tiled executors run every non-overlapped scheme
#: (redundant-halo recomputation would duplicate stage side buffers);
#: single-field lattice walkers and the overlapped baseline refuse.
STAGED_SUPPORTED = {
    "serial": set(SCHEMES) - {"overlapped"},
    "compiled": set(SCHEMES) - {"overlapped"},
    "batched": set(SCHEMES) - {"overlapped"},
    "threaded": set(SCHEMES) - {"overlapped"},
    "resilient": set(SCHEMES) - {"overlapped"},
    "distributed": set(),
    "elastic": set(),
    "baseline:pointwise": set(),
    "baseline:blocked": set(),
    "baseline:merged": set(),
    "baseline:overlapped": set(),
}

_EXTRA_MARKS = {
    "elastic": (pytest.mark.dist,),  # spawns real rank processes
    "compiled": (pytest.mark.engine,),
    "batched": (pytest.mark.engine,),
}

BACKEND_PARAMS = [
    pytest.param(name, marks=_EXTRA_MARKS.get(name, ()))
    for name in backend_names()
]


def test_support_table_covers_registry():
    """The contract table and the registry must list the same backends."""
    assert sorted(SUPPORTED) == backend_names()


@pytest.fixture(scope="module")
def references():
    spec = heat1d()
    return {
        steps: reference_sweep(spec, Grid(spec, SHAPE, seed=0), steps)
        for steps in STEPS_CASES
    }


@pytest.mark.parametrize("steps", STEPS_CASES)
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_cell(backend, scheme, steps, references):
    spec = heat1d()
    config = RunConfig(shape=SHAPE, steps=steps, scheme=scheme, b=B,
                       backend=backend, threads=2, ranks=2)

    if scheme in SUPPORTED[backend]:
        result = run(spec, config)
        assert np.array_equal(references[steps], result.interior), (
            f"{backend} x {scheme} (steps={steps}) diverged from the "
            f"reference sweep"
        )
        assert result.stats.backend == backend
        assert result.stats.scheme == scheme
        assert result.stats.steps == steps
    else:
        with pytest.raises(BackendUnsupported) as excinfo:
            run(spec, config)
        err = excinfo.value
        assert err.backend == backend
        assert err.reason, "refusal must carry a human-readable reason"
        assert backend in str(err)


def test_staged_support_table_covers_registry():
    assert sorted(STAGED_SUPPORTED) == backend_names()


@pytest.fixture(scope="module")
def staged_references():
    from repro.stencils.systems import fdtd1d

    spec = fdtd1d()
    return {
        steps: reference_sweep(spec, Grid(spec, SHAPE, seed=0), steps)
        for steps in STEPS_CASES
    }


@pytest.mark.stages
@pytest.mark.parametrize("steps", STEPS_CASES)
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_staged_cell(backend, scheme, steps, staged_references):
    from repro.stencils.systems import fdtd1d

    spec = fdtd1d()
    config = RunConfig(shape=SHAPE, steps=steps, scheme=scheme, b=B,
                       backend=backend, threads=2, ranks=2)

    if scheme in STAGED_SUPPORTED[backend]:
        result = run(spec, config)
        assert np.array_equal(staged_references[steps], result.interior), (
            f"staged {backend} x {scheme} (steps={steps}) diverged from "
            f"the per-stage oracle"
        )
    else:
        with pytest.raises(BackendUnsupported) as excinfo:
            run(spec, config)
        err = excinfo.value
        assert err.backend == backend
        assert err.reason, "refusal must carry a human-readable reason"


def test_refusal_is_a_value_error():
    """Legacy callers catch ValueError; the typed refusal must still be
    one."""
    spec = heat1d()
    with pytest.raises(ValueError):
        run(spec, RunConfig(shape=SHAPE, steps=4, scheme="naive", b=B,
                            backend="baseline:merged"))


def test_periodic_only_on_pointwise():
    """Periodic boundaries: baseline:pointwise runs them, every other
    backend refuses before touching a buffer."""
    from repro import get_stencil

    spec = get_stencil("heat1d", boundary="periodic")
    ref = reference_sweep(spec, Grid(spec, (48,), seed=0), 8)
    for backend in backend_names():
        config = RunConfig(shape=(48,), steps=8, scheme="tess", b=B,
                           backend=backend)
        if backend == "baseline:pointwise":
            result = run(spec, config)
            assert np.array_equal(ref, result.interior)
        else:
            with pytest.raises(BackendUnsupported):
                run(spec, config)
