"""Figure 9 — Game of Life performance vs cores.

Paper claims: Pochoir beats Pluto below ~12 cores and loses beyond;
the tessellation is highest with near-ideal scalability.
"""

from conftest import BENCH_CORES, render_result

from repro.bench.experiments import fig9_life


def test_fig9(benchmark, capsys):
    fr = benchmark.pedantic(
        fig9_life, kwargs={"cores": BENCH_CORES}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_result(fr))
    t24, pl24, po24 = (fr.at(s, 24) for s in ("tess", "pluto", "pochoir"))
    # tessellation at or near the top of the full machine
    assert t24.gstencils >= 0.92 * max(pl24.gstencils, po24.gstencils)
    # pluto ahead of pochoir at high core counts (paper's crossover)
    assert pl24.gstencils >= po24.gstencils
    # near-ideal tess scaling
    assert t24.gstencils / fr.at("tess", 1).gstencils > 14
