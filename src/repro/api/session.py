"""Session — the one pipeline every execution path flows through.

::

    StencilSpec --ScheduleBuilder--> RegionSchedule
                --engine lowering--> CompiledPlan   (optional)
                --Backend.execute--> interior + RunStats

A :class:`Session` binds a stencil spec to a plan cache and a schedule
builder and exposes the pipeline at three levels:

* :meth:`Session.run` — everything from a :class:`RunConfig` (build,
  sanitize, lower, execute, verify);
* :meth:`Session.execute` — run prebuilt artifacts (schedule, lattice,
  plan) through a backend; this is what the legacy entry-point shims
  delegate to;
* :meth:`Session.build` / :meth:`Session.lower` — the individual
  stages, for callers (autotuner, benchmarks) that reuse artifacts
  across many runs.

Module-level :func:`run` / :func:`execute` are one-shot conveniences
that create a throwaway session.

Stats discipline: the compiled plan for one run is obtained **once**,
before execution, through the session's plan cache.  Retries and
restarts inside the resilient backend replay the already-compiled
plan, so ``RunStats.plan_compiles`` counts each compile exactly once
— the local backends report the per-run cache delta, the distributed
backends report the rank-side tally from ``CommStats``.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.api.backends import (
    Backend,
    BackendUnsupported,
    ExecutionContext,
    get_backend,
)
from repro.api.builder import BuiltSchedule, ScheduleBuilder
from repro.api.config import RunConfig
from repro.api.stats import RunResult, RunStats, cache_delta
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec

__all__ = ["Session", "run", "execute"]

#: backends whose pooled task runners need the plan's per-group units
#: materialised up front (lazy materialisation inside worker threads
#: would race on the plan's internal cache)
_POOLED_BACKENDS = ("threaded", "resilient")


class Session:
    """A stencil spec bound to a plan cache and a schedule builder."""

    def __init__(self, spec: StencilSpec, *, cache=None,
                 builder: Optional[ScheduleBuilder] = None):
        from repro.stencils.staged import canonical_spec

        # a trivial 1-stage staged wrapper IS its plain spec: unwrap at
        # the session boundary so plans, cache keys and stats are
        # identical and no drive-loop path ever forks on "staged"
        self.spec = canonical_spec(spec)
        if cache is None:
            from repro.engine.cache import default_cache

            cache = default_cache()
        self.cache = cache
        self.builder = builder or ScheduleBuilder()

    # -- individual pipeline stages -----------------------------------

    def default_shape(self) -> Tuple[int, ...]:
        return self.builder.default_shape(self.spec)

    def build(self, config: RunConfig,
              shape: Optional[Tuple[int, ...]] = None) -> BuiltSchedule:
        """Stage 1: RunConfig -> RegionSchedule (+ lattice)."""
        return self.builder.build(self.spec, config.normalized(), shape)

    def lower(self, schedule, params: Tuple = (), *,
              batch_threshold: int = 4096, fuse: bool = True,
              batched: bool = False):
        """Stage 2: RegionSchedule -> CompiledPlan, via the plan cache.

        ``batched=True`` marks the lookup as serving a many-instances
        run (same plan, same key — only the cache's ``batched_hits``
        amortisation counter moves).
        """
        return self.cache.get(self.spec, schedule, params=params,
                              batch_threshold=batch_threshold, fuse=fuse,
                              batched=batched)

    # -- the pipeline -------------------------------------------------

    def run(self, config: Optional[RunConfig] = None, *,
            grid: Optional[Grid] = None, **overrides) -> RunResult:
        """Run the full pipeline from a configuration."""
        config = (config or RunConfig()).with_overrides(overrides)
        return self._pipeline(config.normalized(), grid=grid)

    def run_many(self, config: Optional[RunConfig] = None, *,
                 grids=None, **overrides):
        """Run N independent instances as one stacked batch.

        The many-instances front door of the ``batched`` backend: the
        members either come in as ``grids`` (all sharing one shape) or
        are created from ``config.batch`` with instance ``i`` seeded
        ``seed + i``.  One plan lookup, one schedule walk, one kernel
        dispatch per unit serve the whole batch; returns one
        :class:`~repro.api.stats.RunResult` per instance, each
        bit-identical to an independent ``backend="compiled"`` run of
        that instance.  With ``verify=True`` every member (not just the
        first) is checked against the naive sweep.
        """
        from dataclasses import replace as _replace

        config = (config or RunConfig()).with_overrides(overrides)
        config = config.normalized()
        if config.backend not in ("batched", "serial"):
            raise ValueError(
                f"run_many runs backend 'batched', got {config.backend!r}"
            )
        config = _replace(config, backend="batched")
        if grids is not None:
            grids = list(grids)
            if not grids:
                raise ValueError("run_many needs at least one grid")
            config = _replace(config, batch=len(grids),
                              shape=grids[0].shape)
        shape = config.shape or self.default_shape()
        config = _replace(config, shape=tuple(shape))
        if grids is None:
            grids = [
                Grid(self.spec, tuple(shape), init="random",
                     seed=config.seed + i)
                for i in range(config.batch)
            ]
        snapshots = ([g.copy() for g in grids] if config.verify
                     else None)
        # no fallback dispatch here: a degraded hop onto a
        # single-instance backend could not produce per-member results
        result = self._pipeline_once(config, grid=grids[0],
                                     batch_grids=grids)
        results = []
        for i, g in enumerate(grids):
            interior = g.interior(config.steps)
            verified = result.stats.verified
            if config.verify and i > 0:
                verified = self._verify(snapshots[i], interior,
                                        config.steps)
            stats = (result.stats if i == 0 else
                     _replace(result.stats, verified=verified))
            results.append(RunResult(
                interior=interior, stats=stats, config=config, grid=g,
                schedule=result.schedule, lattice=result.lattice,
                plan=result.plan, sanitizer=result.sanitizer,
            ))
        return results

    def execute(self, grid: Grid, schedule=None, *,
                config: Optional[RunConfig] = None, lattice=None,
                plan=None, params: Optional[Tuple] = None,
                **overrides) -> RunResult:
        """Run prebuilt artifacts through a backend.

        When ``schedule`` is given, its scheme/shape/steps override the
        configuration's so the stats always describe what actually ran.
        """
        config = (config or RunConfig()).with_overrides(overrides)
        return self._pipeline(config.normalized(), grid=grid,
                              schedule=schedule, lattice=lattice,
                              plan=plan, params=params)

    # -- internals ----------------------------------------------------

    def _pipeline(self, config: RunConfig, *, grid=None, schedule=None,
                  lattice=None, plan=None,
                  params: Optional[Tuple] = None) -> RunResult:
        """Dispatch one run: straight through, or via the QoS fallback
        chain when the config carries one.  ``config.qos is None`` takes
        the exact pre-QoS code path (zero-overhead default)."""
        qos = config.qos
        if qos is not None and qos.fallback:
            from repro.api.fallback import run_with_fallback

            return run_with_fallback(self, config, grid=grid,
                                     schedule=schedule, lattice=lattice,
                                     plan=plan, params=params)
        return self._pipeline_once(config, grid=grid, schedule=schedule,
                                   lattice=lattice, plan=plan,
                                   params=params)

    def _pipeline_once(self, config: RunConfig, *, grid=None,
                       schedule=None, lattice=None, plan=None,
                       params: Optional[Tuple] = None,
                       batch_grids=None) -> RunResult:
        spec = self.spec
        backend = get_backend(config.backend)
        phases: Dict[str, float] = {}

        if schedule is not None:
            config = replace(config, scheme=schedule.scheme,
                             shape=tuple(schedule.shape),
                             steps=schedule.steps)
        if plan is not None and schedule is None and backend.kind == "schedule":
            config = replace(config, scheme=plan.scheme,
                             shape=tuple(plan.shape), steps=plan.steps)

        shape = config.shape
        if shape is None:
            shape = grid.shape if grid is not None else self.default_shape()
            config = replace(config, shape=tuple(shape))

        # admit + arm the QoS budget ------------------------------------
        budget = None
        if config.qos is not None:
            from repro.runtime.qos import RunBudget, admit

            admit(spec, tuple(shape), config)  # before any allocation
            # armed here so build/lower time counts against the
            # deadline; each fallback hop re-enters and re-arms
            budget = RunBudget.from_policy(config.qos)

        # build ---------------------------------------------------------
        need_schedule = backend.kind == "schedule" and schedule is None \
            and plan is None
        need_lattice = backend.kind == "lattice" and lattice is None
        if need_schedule or need_lattice:
            t0 = time.perf_counter()
            if need_schedule:
                built = self.builder.build(spec, config, shape)
                schedule, lattice = built.schedule, built.lattice
                if params is None:
                    params = built.params
            else:
                lattice = self.builder.lattice(spec, shape, config)
            phases["build"] = time.perf_counter() - t0

        reason = backend.supports(spec, config, schedule)
        if reason is not None:
            raise BackendUnsupported(backend.name, reason)

        if grid is None:
            grid = Grid(spec, tuple(shape), init="random", seed=config.seed)
        if (backend.name == "batched" and batch_grids is None
                and config.batch > 1):
            # config-driven batch: instance 0 is the caller's grid,
            # further members seed deterministically with seed + i
            batch_grids = [grid] + [
                Grid(spec, tuple(shape), init="random",
                     seed=config.seed + i)
                for i in range(1, config.batch)
            ]

        # sanitize ------------------------------------------------------
        sanitizer_report = None
        if config.sanitize and backend.kind == "schedule" \
                and schedule is not None:
            from repro.runtime.sanitizer import sanitize_schedule

            t0 = time.perf_counter()
            sanitizer_report = sanitize_schedule(spec, schedule)
            phases["sanitize"] = time.perf_counter() - t0
            sanitizer_report.raise_if_violations()

        # lower ---------------------------------------------------------
        engine = self._resolve_engine(config, backend)
        delta = None
        if engine == "compiled" and plan is None:
            t0 = time.perf_counter()
            before = self.cache.stats.as_dict()
            plan = self.lower(schedule,
                              params if params is not None
                              else config.tile_params(),
                              batched=backend.name == "batched")
            delta = cache_delta(before, self.cache.stats.as_dict())
            phases["lower"] = time.perf_counter() - t0
        if plan is not None and backend.name in _POOLED_BACKENDS:
            # materialise per-group units before any pool thread runs
            for gi in range(len(plan.group_ids)):
                plan.task_units(gi)

        # execute -------------------------------------------------------
        trace = config.trace
        if trace is None and backend.name in ("resilient", "distributed",
                                              "elastic"):
            from repro.runtime.tracing import ExecutionTrace

            trace = ExecutionTrace(scheme=config.scheme)
        snapshot = grid.copy() if config.verify else None
        ctx = ExecutionContext(spec=spec, grid=grid, config=config,
                               schedule=schedule, lattice=lattice,
                               plan=plan, trace=trace, budget=budget,
                               batch_grids=batch_grids)
        stage_seconds: Dict[str, float] = {}
        t0 = time.perf_counter()
        if spec.is_staged:
            from repro.stencils.staged import stage_timings

            stage_timings.arm()
            try:
                outcome = backend.execute(ctx)
            finally:
                stage_seconds = stage_timings.disarm()
        else:
            outcome = backend.execute(ctx)
        phases["execute"] = time.perf_counter() - t0

        # verify --------------------------------------------------------
        verified = None
        if config.verify:
            t0 = time.perf_counter()
            verified = self._verify(snapshot, outcome.interior, config.steps)
            phases["verify"] = time.perf_counter() - t0

        stats = self._assemble_stats(config, backend, engine, schedule,
                                     phases, trace, outcome, delta,
                                     plan, verified)
        stats.stages = stage_seconds
        return RunResult(interior=outcome.interior, stats=stats,
                         config=config, grid=grid, schedule=schedule,
                         lattice=lattice, plan=plan,
                         sanitizer=sanitizer_report)

    @staticmethod
    def _resolve_engine(config: RunConfig, backend: Backend) -> str:
        if config.engine == "auto":
            return ("compiled" if backend.name in ("compiled", "batched")
                    else "naive")
        return config.engine

    def _verify(self, snapshot: Grid, interior: np.ndarray,
                steps: int) -> bool:
        from repro.stencils.reference import reference_sweep

        ref = reference_sweep(self.spec, snapshot, steps)
        if np.issubdtype(self.spec.dtype, np.integer):
            return bool(np.array_equal(ref, interior))
        return bool(np.allclose(ref, interior, rtol=1e-11, atol=1e-12))

    def _assemble_stats(self, config, backend, engine, schedule, phases,
                        trace, outcome, delta, plan, verified) -> RunStats:
        stats = RunStats(
            backend=backend.name,
            scheme=config.scheme,
            engine=engine if plan is not None else "naive",
            shape=tuple(config.shape or ()),
            steps=config.steps,
            phases=phases,
            events=list(trace.events) if trace is not None else [],
            comm=outcome.comm,
            resilience=outcome.resilience,
            cache=delta,
            verified=verified,
        )
        if schedule is not None:
            from repro.runtime.schedule import schedule_stats

            stats.schedule = schedule_stats(schedule)
        if outcome.comm is not None:
            # rank-side compiles are the authoritative tally: the local
            # cache never saw these plans
            stats.plan_compiles = int(outcome.comm.plan_compiles)
        elif delta is not None:
            stats.plan_compiles = int(delta.misses)
            stats.cache_hits = int(delta.hits)
        return stats


def run(spec: StencilSpec, config: Optional[RunConfig] = None,
        **overrides) -> RunResult:
    """One-shot pipeline run: ``run(spec, shape=..., backend=...)``."""
    return Session(spec).run(config, **overrides)


def execute(spec: StencilSpec, grid: Grid, schedule=None,
            **kwargs) -> RunResult:
    """One-shot execution of prebuilt artifacts (see Session.execute)."""
    return Session(spec).execute(grid, schedule, **kwargs)
