"""Threaded execution of region schedules.

Demonstrates that the barrier-group structure really is parallel:
tasks of one group are submitted to a thread pool together and the
main thread waits (the barrier) before starting the next group.  NumPy
releases the GIL inside the vectorised region updates, so on a
multi-core machine groups genuinely overlap; on a single-core machine
this path exercises exactly the same code and ordering guarantees.

Correctness relies on the schemes' independence guarantees: tasks in
one group touch disjoint regions (tessellation, diamond, skewed), or
overlap only with *identical-value* writes (overlapped tiling), so no
synchronisation beyond the barrier is needed — the paper's
``#pragma omp parallel for``.

Failure semantics are **fail-fast**: on the first task exception the
group's still-pending futures are cancelled, the running ones are
joined, and a structured :class:`~repro.runtime.errors.ExecutionError`
naming the failing task and group is raised.  Without this, every
future ran to completion and a partially-updated grid was
indistinguishable from success.  For retry/checkpoint recovery
semantics use :func:`repro.runtime.resilience.execute_resilient`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.runtime.faults import FaultPlan, poison_task_output
from repro.runtime.schedule import RegionSchedule, ScheduledTask
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


def _run_task(
    spec: StencilSpec,
    grid: Grid,
    task: ScheduledTask,
    group: int = 0,
    index: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    units=None,
) -> int:
    if fault_plan is not None:
        f = fault_plan.stall_fault(group, index)
        if f is not None:
            import time
            time.sleep(f.stall_s)
        fault_plan.raise_if_crash(group, index)
    pts = 0
    if units is not None:
        from repro.engine.plan import run_units

        run_units(units, grid, spec)
        pts = task.points
    else:
        for a in task.actions:
            spec.apply_region(grid.at(a.t), grid.at(a.t + 1), a.region)
            pts += a.points
    if fault_plan is not None and not np.issubdtype(spec.dtype, np.integer):
        if fault_plan.corrupt_fault(group, index) is not None:
            poison_task_output(grid, task)
    return pts


def _execute_threaded(
    spec: StencilSpec,
    grid: Grid,
    schedule: RegionSchedule,
    num_threads: int = 4,
    fault_plan: Optional[FaultPlan] = None,
    sanitize: bool = False,
    plan=None,
    budget=None,
) -> np.ndarray:
    """Pooled barrier-group execution (the ``threaded`` backend's engine).

    Returns the interior at time ``schedule.steps``.  Fail-fast: the
    first task exception cancels the group's pending tasks and raises
    :class:`ExecutionError` carrying the scheme/group/task context.
    ``fault_plan`` is the deterministic injection harness hook (see
    :mod:`repro.runtime.faults`).  With ``sanitize=True`` the
    structural sanitizer runs as a pre-flight and raises
    :class:`~repro.runtime.errors.SanitizerViolation` before any
    buffer is touched — the check that makes the "tasks of one group
    are independent" assumption above an enforced invariant instead
    of a convention.

    ``plan`` accepts a :class:`~repro.engine.plan.CompiledPlan` for the
    same schedule: each task then runs its precompiled allocation-free
    units (per-task view, original action order — cross-task fusion is
    never handed to threads, so the barrier-group independence contract
    is untouched).
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    if spec.is_periodic:
        raise ValueError("region schedules assume non-periodic boundaries")
    if grid.shape != schedule.shape:
        raise ValueError(
            f"grid shape {grid.shape} != schedule shape {schedule.shape}"
        )
    if sanitize:
        from repro.runtime.sanitizer import sanitize_schedule

        sanitize_schedule(spec, schedule).raise_if_violations()
    if plan is not None:
        if plan.private:
            raise ValueError(
                "ghost-zone plans have no threaded path; use execute_plan"
            )
        if (plan.shape != schedule.shape or plan.steps != schedule.steps
                or plan.scheme != schedule.scheme):
            raise ValueError("plan was compiled for a different schedule")
    from repro.api.driver import drive_groups

    if plan is not None:
        # materialise per-group units on the main thread: the plan's
        # unit cache is lazy and must not be populated from workers
        all_units = [plan.task_units(gi)
                     for gi in range(len(plan.group_ids))]
    else:
        all_units = None

    def run_one(gi, gid, ti, task):
        group_units = all_units[gi] if all_units is not None else None
        return _run_task(spec, grid, task, gid, ti, fault_plan,
                         group_units[ti] if group_units else None)

    drive_groups(schedule, run_one, num_threads=num_threads, budget=budget)
    return grid.interior(schedule.steps)


def execute_threaded(
    spec: StencilSpec,
    grid: Grid,
    schedule: RegionSchedule,
    num_threads: int = 4,
    fault_plan: Optional[FaultPlan] = None,
    sanitize: bool = False,
    plan=None,
) -> np.ndarray:
    """Execute a schedule with ``num_threads`` worker threads.

    Returns the interior at time ``schedule.steps``.

    .. deprecated:: use ``repro.api.run`` / ``Session.execute`` with
       ``backend="threaded"`` instead.
    """
    from repro.api import RunConfig, Session, warn_legacy

    warn_legacy("execute_threaded", "repro.api.run(backend='threaded')")
    config = RunConfig(backend="threaded", engine="naive",
                       threads=num_threads, fault_plan=fault_plan,
                       sanitize=sanitize)
    result = Session(spec).execute(grid, schedule, config=config, plan=plan)
    return result.interior
