"""Deprecation machinery for the legacy executor entry points.

The eight historical entry points (``run_blocked``, ``run_merged``,
``execute_schedule``, ``execute_threaded``, ``execute_resilient``,
``execute_plan``, ``execute_distributed``, ``execute_elastic``) survive
as thin shims that delegate to the :mod:`repro.api` facade and emit
exactly one :class:`DeprecationWarning` per call.  First-party code
(the package itself, the CLI, the bench harness, the examples and the
test-suite outside the dedicated shim test) never goes through them —
CI runs a ``-W error::DeprecationWarning`` job to enforce that.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_legacy"]


def warn_legacy(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the single DeprecationWarning of a legacy entry point.

    ``stacklevel=3`` points the warning at the *caller* of the shim
    (shim -> warn_legacy -> warnings.warn), which is where the
    migration has to happen.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        f"(see docs/architecture.md)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
