"""Tests for StencilSpec and region helpers."""

import numpy as np
import pytest

from repro.stencils.operators import LinearStencilOperator
from repro.stencils.spec import (
    StencilSpec,
    clip_region,
    full_region,
    region_is_empty,
    region_size,
)


def simple_spec(ndim=1, boundary="dirichlet"):
    if ndim == 1:
        op = LinearStencilOperator([(-1,), (0,), (1,)], [0.25, 0.5, 0.25])
    else:
        op = LinearStencilOperator(
            [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)],
            [0.6, 0.1, 0.1, 0.1, 0.1],
        )
    return StencilSpec("test", ndim, op, boundary=boundary)


class TestRegionHelpers:
    def test_full_region(self):
        assert full_region((3, 4)) == ((0, 3), (0, 4))

    def test_region_size(self):
        assert region_size(((0, 3), (1, 4))) == 9
        assert region_size(((2, 2),)) == 0
        assert region_size(((3, 1),)) == 0

    def test_clip_region(self):
        assert clip_region(((-2, 5),), (4,)) == ((0, 4),)

    def test_region_is_empty(self):
        assert region_is_empty(((1, 1), (0, 5)))
        assert not region_is_empty(((0, 1), (0, 5)))


class TestSpecProperties:
    def test_slopes_and_halo(self):
        s = simple_spec()
        assert s.slopes == (1,)
        assert s.halo == (1,)
        assert s.order == 1

    def test_num_neighbors_and_flops(self):
        s = simple_spec(2)
        assert s.num_neighbors == 5
        assert s.flops_per_point == 9

    def test_padded_shape(self):
        s = simple_spec(2)
        assert s.padded_shape((5, 6)) == (7, 8)

    def test_interior_slices(self):
        s = simple_spec()
        arr = np.arange(8, dtype=np.float64)
        assert np.array_equal(arr[s.interior_slices((6,))], arr[1:7])

    def test_describe_mentions_name(self):
        assert "test" in simple_spec().describe()

    def test_dimension_validation(self):
        op = LinearStencilOperator([(-1,), (0,), (1,)], [1, 1, 1])
        with pytest.raises(ValueError):
            StencilSpec("bad", 2, op)
        with pytest.raises(ValueError):
            StencilSpec("bad", 0, op)

    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            simple_spec(boundary="reflecting")

    def test_shape_validation(self):
        op = LinearStencilOperator([(0,)], [1.0])
        with pytest.raises(ValueError):
            StencilSpec("bad", 1, op, shape="circle")

    def test_padded_shape_rank_check(self):
        with pytest.raises(ValueError):
            simple_spec().padded_shape((4, 4))


class TestApplyRegion:
    def test_updates_only_region(self):
        s = simple_spec()
        src = np.arange(10, dtype=np.float64)
        dst = np.full(10, -1.0)
        s.apply_region(src, dst, ((2, 5),))
        # padded index = interior + 1
        assert np.all(dst[:3] == -1) and np.all(dst[6:] == -1)
        expect = 0.25 * src[2:5] + 0.5 * src[3:6] + 0.25 * src[4:7]
        assert np.allclose(dst[3:6], expect)

    def test_empty_region_noop(self):
        s = simple_spec()
        src = np.ones(10)
        dst = np.zeros(10)
        s.apply_region(src, dst, ((4, 4),))
        assert not dst.any()
