"""Halo-padded grids and initial conditions.

A :class:`Grid` owns the pair of ping-pong buffers every Jacobi scheme
needs (values at even global times live in one buffer, odd times in the
other — exactly the two-buffer argument that makes the paper's ±1
time-skew between neighbours safe, Theorem 3.6).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.stencils.spec import StencilSpec


def make_grid(
    spec: StencilSpec,
    shape: Sequence[int],
    init: str = "random",
    seed: int = 0,
) -> np.ndarray:
    """Allocate a halo-padded array and fill its interior.

    ``init`` is one of:

    * ``"random"`` — uniform [0,1) values (random 0/1 for integer grids);
    * ``"zeros"`` — all zero interior;
    * ``"impulse"`` — a single 1.0 at the interior centre;
    * ``"gradient"`` — sum of normalised coordinates (smooth, asymmetric).

    Halo cells are zero — the Dirichlet boundary the paper evaluates.
    """
    shape = tuple(int(n) for n in shape)
    if len(shape) != spec.ndim:
        raise ValueError(
            f"grid rank {len(shape)} does not match stencil ndim {spec.ndim}"
        )
    if any(n <= 0 for n in shape):
        raise ValueError(f"grid shape must be positive, got {shape}")
    arr = np.zeros(spec.padded_shape(shape), dtype=spec.dtype)
    interior = arr[spec.interior_slices(shape)]
    rng = np.random.default_rng(seed)
    # interior.shape == shape for plain specs; staged specs carry a
    # leading field axis, which must get independent random values and
    # a per-field impulse (gradient broadcasts across fields below).
    if init == "random":
        if np.issubdtype(spec.dtype, np.integer):
            interior[...] = rng.integers(
                0, 2, size=interior.shape, dtype=spec.dtype
            )
        else:
            interior[...] = rng.random(size=interior.shape)
    elif init == "zeros":
        pass
    elif init == "impulse":
        centre = tuple(n // 2 for n in shape)
        interior[(Ellipsis,) + centre] = 1
    elif init == "gradient":
        acc = np.zeros(shape, dtype=np.float64)
        for j, n in enumerate(shape):
            idx = [np.newaxis] * len(shape)
            idx[j] = slice(None)
            acc = acc + (np.arange(n, dtype=np.float64) / max(n, 1))[tuple(idx)]
        if np.issubdtype(spec.dtype, np.integer):
            interior[...] = (acc > acc.mean()).astype(spec.dtype)
        else:
            interior[...] = acc
    else:
        raise ValueError(f"unknown init {init!r}")
    return arr


class Grid:
    """Ping-pong buffer pair for time-tiled Jacobi execution.

    ``buffers[t % 2]`` holds (partially computed) values at global time
    ``t``.  Executors read ``at(t)`` and write ``at(t + 1)``.
    """

    def __init__(
        self,
        spec: StencilSpec,
        shape: Sequence[int],
        init: str = "random",
        seed: int = 0,
    ):
        self.spec = spec
        self.shape: Tuple[int, ...] = tuple(int(n) for n in shape)
        a = make_grid(spec, self.shape, init=init, seed=seed)
        self.buffers = [a, a.copy()]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def at(self, t: int) -> np.ndarray:
        """Padded buffer holding values at global time ``t``."""
        return self.buffers[t % 2]

    def interior(self, t: int) -> np.ndarray:
        """Interior view of the buffer for global time ``t``."""
        return self.at(t)[self.spec.interior_slices(self.shape)]

    def points(self) -> int:
        """Interior point count."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    def copy(self) -> "Grid":
        """Deep copy (same spec, independent buffers)."""
        g = Grid.__new__(Grid)
        g.spec = self.spec
        g.shape = self.shape
        g.buffers = [b.copy() for b in self.buffers]
        return g
