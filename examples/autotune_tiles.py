#!/usr/bin/env python3
"""Auto-tuning tessellation tile sizes (the paper's stated future work).

§5.1 notes that "the performance is very sensitive to the tile sizes,
but this requires significant effort in auto tuning".  This example
runs the library's tuner against the simulated paper machine: a coarse
grid search over time-tile depths, then per-axis coordinate descent on
the §4.2 coarsening widths.

Run:  python examples/autotune_tiles.py
"""

from repro import get_stencil
from repro.autotune import grid_search, tune_tessellation
from repro.bench.report import format_table
from repro.machine import paper_machine


def main() -> None:
    spec = get_stencil("heat2d")
    shape = (720, 720)
    steps = 48
    cores = 24
    machine = paper_machine().scaled_caches(0.05)

    print(f"tuning {spec.name} on {shape} x {steps} steps, "
          f"{cores} simulated cores\n")

    coarse = grid_search(spec, shape, steps, machine, cores)
    rows = [
        [r.b, str(r.core_widths), f"{r.result.gstencils:.2f}",
         f"{r.result.time_s * 1e3:.2f}"]
        for r in coarse[:8]
    ]
    print("grid search (best first):")
    print(format_table(["b", "core widths", "GStencil/s", "sim ms"], rows))

    best = tune_tessellation(spec, shape, steps, machine, cores)
    print(f"\nafter per-axis descent: {best.describe()}")

    worst = coarse[-1]
    ratio = worst.time_s / best.time_s
    print(
        f"\nsensitivity: best configuration is {ratio:.1f}x faster than "
        f"the worst swept one — the tile-size sensitivity §5.1 reports."
    )


if __name__ == "__main__":
    main()
