"""The one stats schema — and the compile-counter double-counting fix.

Historically each executor family reported its own stats object and a
resilient run that retried or restarted a group could recount the
plan-cache counters on every replay.  The facade compiles the plan
exactly once, *before* execution, so:

* ``RunStats.plan_compiles`` is the per-run plan-cache delta (local
  backends) or the rank-side tally (distributed backends), never both;
* retries/restores replay the already-compiled plan and must not bump
  either counter.
"""

import numpy as np
import pytest

from repro.api import RunConfig, Session
from repro.engine.cache import PlanCache
from repro.runtime import FaultPlan, FaultSpec, ResiliencePolicy
from repro.stencils import heat1d, heat2d

pytestmark = [pytest.mark.api, pytest.mark.engine]


def _resilient_config(fault_plan=None):
    return RunConfig(shape=(48, 48), steps=8, scheme="tess", b=4,
                     backend="resilient", engine="compiled", threads=2,
                     resilience=ResiliencePolicy(), fault_plan=fault_plan,
                     verify=True)


class TestNoDoubleCounting:
    def test_crash_retry_compiles_once(self):
        """Regression: an injected crash forces a task retry, but the
        plan was compiled before execution — the retry replays it, so
        the compile counter stays at one."""
        session = Session(heat2d(), cache=PlanCache())
        plan = FaultPlan([FaultSpec("crash", group=1, task=0)])
        result = session.run(_resilient_config(plan))

        assert result.stats.resilience.task_retries >= 1  # fault fired
        assert result.ok  # and was recovered from
        assert result.stats.plan_compiles == 1
        assert result.stats.cache_hits == 0
        assert result.stats.cache.misses == 1
        assert result.stats.cache.hits == 0

    def test_restore_replay_compiles_once(self):
        """A corruption restore replays a whole group — still one
        compile."""
        session = Session(heat2d(), cache=PlanCache())
        plan = FaultPlan([FaultSpec("corrupt", group=2, task=0)])
        result = session.run(_resilient_config(plan))

        assert result.stats.resilience.restores >= 1
        assert result.ok
        assert result.stats.plan_compiles == 1

    def test_second_run_is_a_cache_hit(self):
        """Identical config through the same session: zero compiles,
        one hit — the per-run delta, not the cache's lifetime tally."""
        session = Session(heat2d(), cache=PlanCache())
        plan = FaultPlan([FaultSpec("crash", group=1, task=0)])
        first = session.run(_resilient_config(plan))
        second = session.run(_resilient_config(plan))

        assert first.stats.plan_compiles == 1
        assert second.stats.plan_compiles == 0
        assert second.stats.cache_hits == 1
        assert np.array_equal(first.interior, second.interior)

    def test_phase_replay_does_not_recount(self):
        """Distributed: a dropped exchange forces a phase replay; the
        compile tally must match the fault-free run exactly."""
        session = Session(heat1d())
        base = RunConfig(shape=(200,), steps=8, scheme="tess", b=4,
                         backend="distributed", ranks=4, verify=True)
        clean = session.run(base)
        replayed = session.run(
            base, fault_plan=FaultPlan([FaultSpec("drop", group=2, task=1)]),
            resilience=ResiliencePolicy())

        assert replayed.stats.comm.phase_restarts >= 1
        assert replayed.stats.plan_compiles == clean.stats.plan_compiles
        assert np.array_equal(clean.interior, replayed.interior)

    def test_prebuilt_plan_counts_zero(self):
        """A plan handed in explicitly was not compiled by this run."""
        session = Session(heat2d(), cache=PlanCache())
        cfg = RunConfig(shape=(32, 32), steps=8, scheme="tess", b=4,
                        backend="compiled", engine="compiled").normalized()
        built = session.build(cfg)
        plan = session.lower(built.schedule, built.params)
        from repro.stencils import Grid

        result = session.execute(Grid(heat2d(), (32, 32), seed=0),
                                 config=cfg, plan=plan)
        assert result.stats.plan_compiles == 0
        assert result.stats.cache_hits == 0


class TestOneSchema:
    """Every backend family fills the same RunStats shape."""

    def test_local_run_blocks(self):
        result = Session(heat2d()).run(
            RunConfig(shape=(32, 32), steps=8, scheme="tess", b=4,
                      backend="serial", verify=True))
        st = result.stats
        assert st.comm is None and st.resilience is None
        assert st.verified is True
        assert set(st.phases) >= {"build", "execute", "verify"}
        assert st.points == 32 * 32 * 8

    def test_resilient_run_blocks(self):
        result = Session(heat2d()).run(_resilient_config())
        st = result.stats
        assert st.resilience is not None and st.comm is None
        assert st.cache is not None  # engine=compiled lowered a plan
        assert "lower" in st.phases

    def test_distributed_run_blocks(self):
        result = Session(heat1d()).run(
            RunConfig(shape=(200,), steps=8, scheme="tess", b=4,
                      backend="distributed", ranks=4))
        st = result.stats
        assert st.comm is not None and st.resilience is None
        assert st.comm.messages > 0

    @pytest.mark.parametrize("backend", ["serial", "compiled", "threaded",
                                         "baseline:pointwise"])
    def test_as_dict_is_uniform(self, backend):
        result = Session(heat2d()).run(
            RunConfig(shape=(32, 32), steps=4, scheme="tess", b=4,
                      backend=backend, verify=True))
        d = result.stats.as_dict()
        assert {"backend", "scheme", "engine", "shape", "steps", "phases",
                "schedule", "events", "comm", "resilience", "cache",
                "plan_compiles", "cache_hits", "verified"} <= set(d)
        assert d["backend"] == backend
        assert d["verified"] is True

    def test_describe_mentions_counters(self):
        session = Session(heat2d(), cache=PlanCache())
        result = session.run(
            RunConfig(shape=(32, 32), steps=8, scheme="tess", b=4,
                      backend="compiled"))
        line = result.stats.describe()
        assert "plan_compiles=1" in line
        assert "backend=compiled" in line
