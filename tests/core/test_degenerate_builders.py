"""Degenerate inputs: every builder returns a valid (possibly empty)
schedule instead of crashing.

Covered corners: ``steps=0``, 1-cell axes, ``b`` larger than an axis,
and empty interiors (a 0-cell axis).  "Valid" is checked three ways:
``validate_structure()`` passes, the sanitizer reports clean, and —
when the interior is non-empty — the schedule covers exactly
``interior × steps`` point updates (redundant schemes: at least that).
"""

import numpy as np
import pytest

from repro import get_stencil
from repro.baselines import (
    diamond_schedule,
    hexagonal_schedule,
    mwd_schedule,
    naive_schedule,
    overlapped_schedule,
    skewed_schedule,
    spatial_schedule,
    trapezoid_schedule,
)
from repro.cli import SCHEMES, _build_schedule
from repro.core.schedules import tess_schedule
from repro.runtime import sanitize_schedule, verify_schedule

pytestmark = pytest.mark.sanitizer

CASES = [
    # (label, kernel, shape, steps, b)
    ("steps-0", "heat1d", (40,), 0, 4),
    ("one-cell-axis", "heat1d", (1,), 4, 4),
    ("b-exceeds-axis", "heat1d", (6,), 8, 8),
    ("empty-interior", "heat1d", (0,), 4, 4),
    ("2d-one-cell", "heat2d", (1, 16), 4, 4),
    ("2d-empty", "heat2d", (0, 16), 4, 4),
    ("2d-steps-0", "heat2d", (16, 16), 0, 4),
]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("label,kernel,shape,steps,b",
                         CASES, ids=[c[0] for c in CASES])
def test_degenerate_inputs_build_valid_schedules(label, kernel, shape,
                                                 steps, b, scheme):
    spec = get_stencil(kernel)
    sched = _build_schedule(spec, shape, steps, scheme, b)
    sched.validate_structure()
    report = sanitize_schedule(spec, sched)
    assert report.ok, report.describe()
    interior = int(np.prod(shape))
    required = interior * steps
    if required == 0:
        assert sched.total_points() == 0
        assert not any(t.actions for t in sched.tasks)
    elif sched.redundant:
        assert sched.total_points() >= required
    else:
        assert sched.total_points() == required


@pytest.mark.parametrize("label,kernel,shape,steps,b",
                         [c for c in CASES if 0 not in c[2] and c[3] > 0],
                         ids=[c[0] for c in CASES
                              if 0 not in c[2] and c[3] > 0])
def test_degenerate_schedules_still_verify(label, kernel, shape, steps, b):
    """Non-empty degenerate schedules also execute correctly."""
    spec = get_stencil(kernel)
    for scheme in ("naive", "tess", "diamond"):
        sched = _build_schedule(spec, shape, steps, scheme, b)
        assert verify_schedule(spec, sched), (scheme, label)


def test_direct_builder_calls_with_empty_interior():
    """The library builders (not just the CLI path) handle 0-cell axes."""
    s1 = get_stencil("heat1d")
    s2 = get_stencil("heat2d")
    builders = [
        (naive_schedule, (s1, (0,), 4)),
        (spatial_schedule, (s1, (0,), 4, (8,))),
        (skewed_schedule, (s1, (0,), 4, 8)),
        (trapezoid_schedule, (s1, (0,), 4)),
        (overlapped_schedule, (s1, (0,), 4, (8,), 2)),
        (diamond_schedule, (s1, (0,), 4, 4)),
        (mwd_schedule, (s1, (0,), 4, 4)),
        (hexagonal_schedule, (s2, (0, 8), 4, 4, 4)),
        (tess_schedule, (s1, (0,), None, 4)),  # lattice unused when empty
    ]
    for fn, args in builders:
        sched = fn(*args)
        sched.validate_structure()
        assert not any(t.actions for t in sched.tasks), fn.__name__


def test_negative_steps_still_rejected():
    """Hardening must not swallow genuinely invalid arguments."""
    spec = get_stencil("heat1d")
    with pytest.raises(ValueError):
        naive_schedule(spec, (40,), -1)
    with pytest.raises(ValueError):
        diamond_schedule(spec, (40,), 4, -1)
