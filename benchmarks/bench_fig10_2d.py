"""Figure 10 — Heat-2D (star) and 2d9p (box) performance vs cores.

Paper claims: on the star stencil all three are close (Pluto ahead by
<5% at 24 cores); on the 9-point box stencil the tessellation
outperforms Pluto/Pochoir by 14%/20% on average.
"""

from conftest import BENCH_CORES, render_result

from repro.bench.experiments import fig10_2d


def test_fig10(benchmark, capsys):
    results = benchmark.pedantic(
        fig10_2d, kwargs={"cores": BENCH_CORES}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_result(results))
    star, box = results
    # star: the three schemes bunch together
    t, pl = star.at("tess", 24), star.at("pluto", 24)
    assert 0.85 <= t.gstencils / pl.gstencils <= 1.2
    # box: tessellation ahead of both baselines
    t, pl, po = (box.at(s, 24) for s in ("tess", "pluto", "pochoir"))
    assert t.gstencils >= pl.gstencils * 0.98
    assert t.gstencils > po.gstencils
