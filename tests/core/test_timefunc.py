"""Property and unit tests for the update-time functions (§3.4–3.5).

These are the paper's Lemmas 3.1–3.4 and Theorems 3.5/3.6 turned into
executable checks, plus the derived identities the executors rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import timefunc as tf

# distance vectors a with entries in [0, b]
dist_vectors = st.integers(min_value=1, max_value=8).flatmap(
    lambda b: st.tuples(
        st.just(b),
        st.lists(st.integers(min_value=0, max_value=b), min_size=1,
                 max_size=5),
    )
)


class TestSortedForms:
    def test_sorted_desc_simple(self):
        assert tf.sorted_desc([1, 3, 2]).tolist() == [3, 2, 1]

    def test_sorted_desc_batch(self):
        out = tf.sorted_desc([[1, 2], [4, 3]])
        assert out.tolist() == [[2, 1], [4, 3]]

    def test_padded_sorted_sentinels(self):
        p = tf.padded_sorted([2, 0, 1], b=3)
        assert p.tolist() == [3, 2, 1, 0, 0]

    def test_padded_sorted_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            tf.padded_sorted([4], b=3)
        with pytest.raises(ValueError):
            tf.padded_sorted([-1], b=3)

    def test_scalar_input_rejected(self):
        with pytest.raises(ValueError):
            tf.sorted_desc(np.int64(3))


class TestUpdateCounts:
    def test_1d_triangle_block(self):
        # the paper's 1D example: block (0,1,2,3,2,1,0) at b=3 — the
        # centre point of B_0 (distance 0) is updated 3 times in stage 0
        assert tf.update_counts([0], b=3).tolist() == [3, 0]
        assert tf.update_counts([3], b=3).tolist() == [0, 3]
        assert tf.update_counts([1], b=3).tolist() == [2, 1]

    def test_2d_gap_form(self):
        # a = (1, 2), b = 3: sorted (2, 1): T = (1, 1, 1)
        assert tf.update_counts([1, 2], b=3).tolist() == [1, 1, 1]

    def test_number_of_stages(self):
        for d in range(1, 6):
            counts = tf.update_counts([0] * d, b=2)
            assert counts.shape[-1] == d + 1

    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_theorem_3_5_sum_is_b(self, bv):
        b, a = bv
        assert tf.update_counts(a, b).sum() == b
        assert bool(np.all(tf.theorem_3_5_holds(a, b)))

    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_counts_nonnegative(self, bv):
        b, a = bv
        assert tf.update_counts(a, b).min() >= 0

    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_permutation_invariance(self, bv):
        b, a = bv
        perm = list(reversed(a))
        assert (tf.update_counts(a, b).tolist()
                == tf.update_counts(perm, b).tolist())


class TestStageWindows:
    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_windows_partition_the_phase(self, bv):
        """Windows of consecutive stages abut: [0,b) is exactly covered."""
        b, a = bv
        d = len(a)
        prev_end = 0
        for i in range(d + 1):
            start, end = tf.stage_window(a, b, i)
            assert start == prev_end
            assert end - start == tf.update_counts(a, b)[i]
            prev_end = end
        assert prev_end == b

    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_stage_index_matches_windows(self, bv):
        """The derived identity: update s→s+1 happens in stage
        #{j: a_j >= b-s}, which must lie inside that stage's window."""
        b, a = bv
        for s in range(b):
            i = int(tf.stage_index(a, b, s))
            start, end = tf.stage_window(a, b, i)
            assert start <= s < end

    def test_stage_window_bad_stage(self):
        with pytest.raises(ValueError):
            tf.stage_window([1, 2], 3, 3)

    def test_stage_index_bad_step(self):
        with pytest.raises(ValueError):
            tf.stage_index([1], 3, 3)
        with pytest.raises(ValueError):
            tf.stage_index([1], 3, -1)


class TestAccumulatedTime:
    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_prefix_sums(self, bv):
        b, a = bv
        counts = tf.update_counts(a, b)
        acc = 0
        assert tf.accumulated_time(a, b, -1) == 0
        for i in range(len(a) + 1):
            acc += counts[i]
            assert tf.accumulated_time(a, b, i) == acc
        assert acc == b

    def test_bad_stage(self):
        with pytest.raises(ValueError):
            tf.accumulated_time([1], 2, 2)


class TestLiteralPaperForms:
    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_lemma_3_2_equals_gap_form(self, bv):
        b, a = bv
        counts = tf.update_counts(a, b)
        for i in range(len(a) + 1):
            assert tf.lemma_3_2(a, b, i) == counts[i]

    def test_lemma_3_2_paper_t0_td(self):
        # T_0 = b - max(a); T_d = min(a)
        a = [2, 1, 3]
        assert tf.lemma_3_2(a, 4, 0) == 4 - 3
        assert tf.lemma_3_2(a, 4, 3) == 1

    @given(st.integers(2, 5), st.data())
    @settings(max_examples=100, deadline=None)
    def test_lemma_3_4_unique_positive_split(self, d, data):
        """Exactly the i-largest split gives min(A1)-max(A2) >= 0; all
        others give <= 0 (Lemma 3.4)."""
        import itertools

        b = 6
        a = data.draw(st.lists(st.integers(0, b), min_size=d, max_size=d))
        order = sorted(range(d), key=lambda j: -a[j])
        for i in range(1, d):
            best = tuple(sorted(order[:i]))
            for S in itertools.combinations(range(d), i):
                v = tf.lemma_3_4_split(a, i, S)
                if S == best:
                    assert v >= 0
                else:
                    assert v <= 0 or sorted(a[j] for j in S) == sorted(
                        a[j] for j in best
                    )

    def test_lemma_3_4_rejects_bad_split(self):
        with pytest.raises(ValueError):
            tf.lemma_3_4_split([1, 2], 1, (0, 1))
        with pytest.raises(ValueError):
            tf.lemma_3_4_split([1, 2], 0, ())
        with pytest.raises(ValueError):
            tf.lemma_3_4_split([1, 2], 2, (0, 1))


class TestTheorem36:
    @given(dist_vectors, st.data())
    @settings(max_examples=200, deadline=None)
    def test_neighbor_accumulated_times(self, bv, data):
        """±1-apart distance vectors satisfy the correctness condition."""
        b, a = bv
        delta = data.draw(st.lists(st.integers(-1, 1), min_size=len(a),
                                   max_size=len(a)))
        neigh = [min(b, max(0, x + dx)) for x, dx in zip(a, delta)]
        assert tf.theorem_3_6_holds(a, neigh, b)

    def test_rejects_non_neighbors(self):
        with pytest.raises(ValueError):
            tf.theorem_3_6_holds([0, 0], [2, 0], 3)
