"""Compiled execution engine: compile a schedule once, run it many times.

The tiling layer produces :class:`~repro.runtime.schedule.RegionSchedule`
objects — thousands of small ``(t, rectangle)`` actions.  The naive
executor pays Python dispatch, slice construction and fresh NumPy
temporaries for each one.  This package lowers a schedule into a
:class:`~repro.engine.plan.CompiledPlan` whose run loop has **zero
per-run geometry work**:

* :mod:`repro.engine.plan` — schedule → plan compilation: parity
  resolution, precomputed slices, sanitizer-proven same-step rectangle
  fusion, and batched gather/compute/scatter over flat index arrays;
* :mod:`repro.engine.kernels` — allocation-free ``np.multiply`` /
  ``np.add(out=)`` kernels over per-thread scratch arenas, bit-identical
  to the naive operators;
* :mod:`repro.engine.cache` — an LRU plan cache (with optional on-disk
  tier) so autotune probes, distributed ranks and benchmark repeats
  compile exactly once;
* :mod:`repro.engine.batch` — a batch axis over the same plans: N
  independent instances stacked into one ``[N, ...]`` ping-pong pair,
  every unit applied to the whole batch in one NumPy call (the
  ``batched`` backend's engine).

See ``docs/performance.md`` for architecture and measured speedups.
"""

from repro.engine.batch import BatchGrid, plan_supports_batch, stack_grids
from repro.engine.kernels import ScratchArena, thread_arena
from repro.engine.plan import (
    CompiledPlan,
    PlanStats,
    compile_plan,
    execute_plan,
)
from repro.engine.cache import (
    CacheStats,
    PlanCache,
    default_cache,
    get_plan,
    plan_key,
    spec_signature,
)

__all__ = [
    "BatchGrid",
    "CompiledPlan",
    "PlanStats",
    "compile_plan",
    "execute_plan",
    "plan_supports_batch",
    "stack_grids",
    "ScratchArena",
    "thread_arena",
    "CacheStats",
    "PlanCache",
    "default_cache",
    "get_plan",
    "plan_key",
    "spec_signature",
]
