"""RunConfig — the one flag set of the unified execution pipeline.

Every knob the eight historical entry points spread over divergent
signatures (scheme and tile parameters, engine selection, thread
count, sanitizer pre-flight, resilience policy, fault plan, distributed
topology, elastic runtime tuning) lives here once.  The CLI, the
autotuner, the bench harness and the examples all build a
:class:`RunConfig` and hand it to :func:`repro.api.run` /
:class:`repro.api.Session`.

Backend and engine names are normalised through alias tables so the
historical spellings (``--procs``, ``--objective wallclock``, ...)
keep working while the canonical pair is ``backend``/``engine``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "RunConfig",
    "BACKEND_ALIASES",
    "ENGINE_ALIASES",
    "normalize_backend",
    "normalize_engine",
]


#: historical / convenience spellings -> canonical backend names
BACKEND_ALIASES: Dict[str, str] = {
    "seq": "serial",
    "sequential": "serial",
    "schedule": "serial",
    "plan": "compiled",
    "engine": "compiled",
    "threadpool": "threaded",
    "threads": "threaded",
    "batch": "batched",
    "many": "batched",
    "sim": "distributed",
    "simulated": "distributed",
    "procs": "elastic",
    "processes": "elastic",
    "blocked": "baseline:blocked",
    "merged": "baseline:merged",
    "pointwise": "baseline:pointwise",
    "overlapped-executor": "baseline:overlapped",
}

#: historical spellings -> canonical engine names
ENGINE_ALIASES: Dict[str, str] = {
    "walk": "naive",
    "interpreted": "naive",
    "simulate": "naive",
    "wallclock": "compiled",
}

_ENGINES = ("auto", "naive", "compiled")


def normalize_backend(name: str) -> str:
    """Resolve a backend spelling to its canonical registry name."""
    name = str(name).strip().lower()
    return BACKEND_ALIASES.get(name, name)


def normalize_engine(name: str) -> str:
    """Resolve an engine spelling to ``auto``/``naive``/``compiled``."""
    name = str(name).strip().lower()
    name = ENGINE_ALIASES.get(name, name)
    if name not in _ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {_ENGINES} "
            f"(aliases: {sorted(ENGINE_ALIASES)})"
        )
    return name


@dataclass
class RunConfig:
    """Every knob of one pipeline run, with sane defaults.

    Problem selection (``shape``/``steps``), schedule construction
    (``scheme`` and tile parameters), lowering (``engine``), execution
    (``backend`` plus backend-family options) and instrumentation
    (``trace``/``verify``) — see ``docs/architecture.md`` for which
    backend consumes which group.
    """

    # -- problem ------------------------------------------------------
    shape: Optional[Tuple[int, ...]] = None  #: None = kernel default
    steps: int = 32
    seed: int = 0
    #: independent problem instances to run as one stacked batch
    #: (``backend="batched"``); instance ``i`` seeds with ``seed + i``
    #: unless explicit grids are handed to :meth:`Session.run_many`
    batch: int = 1

    # -- schedule construction ---------------------------------------
    scheme: str = "tess"
    b: int = 8  #: time-tile depth
    core_widths: Optional[Tuple[int, ...]] = None
    uncut_dims: Tuple[int, ...] = ()
    tile: Optional[Tuple[int, ...]] = None  #: spatial/overlapped tile
    #: seeded schedule mutations (``kind@group[/task]``) applied after
    #: construction — the sanitizer's bug-planting harness
    mutations: Tuple[str, ...] = ()

    # -- lowering & execution ----------------------------------------
    backend: str = "serial"
    engine: str = "auto"  #: auto | naive | compiled
    threads: int = 1
    sanitize: bool = False
    verify: bool = False

    # -- resilience ---------------------------------------------------
    resilience: Any = None  #: Optional[ResiliencePolicy]
    fault_plan: Any = None  #: Optional[FaultPlan]

    # -- distributed topology ----------------------------------------
    ranks: int = 4
    axis: int = 0
    ghost: Optional[int] = None
    check_divergence: bool = False
    max_phase_restarts: int = 2
    elastic: Any = None  #: Optional[ElasticConfig]

    # -- run-level QoS -----------------------------------------------
    #: Optional[QoSPolicy] — deadline, cancel token, admission ceiling
    #: and fallback chain (see :mod:`repro.runtime.qos`).  None keeps
    #: the exact pre-QoS code path (zero-overhead default).
    qos: Any = None

    # -- instrumentation / escape hatch ------------------------------
    trace: Any = None  #: Optional[ExecutionTrace]
    #: backend-specific extras (``t0``, ``on_block``, ``arena``, ...)
    options: Dict[str, Any] = field(default_factory=dict)

    # ----------------------------------------------------------------

    @property
    def resilient(self) -> bool:
        return self.resilience is not None

    def normalized(self) -> "RunConfig":
        """Canonical copy: aliases resolved, basic ranges validated."""
        cfg = replace(
            self,
            backend=normalize_backend(self.backend),
            engine=normalize_engine(self.engine),
            shape=(tuple(int(n) for n in self.shape)
                   if self.shape is not None else None),
            mutations=tuple(self.mutations),
            uncut_dims=tuple(self.uncut_dims),
        )
        if cfg.steps < 0:
            raise ValueError(f"steps must be >= 0, got {cfg.steps}")
        if cfg.threads < 1:
            raise ValueError(f"threads must be >= 1, got {cfg.threads}")
        if cfg.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {cfg.ranks}")
        if cfg.b < 1:
            raise ValueError(f"time-tile depth b must be >= 1, got {cfg.b}")
        if cfg.batch < 1:
            raise ValueError(f"batch must be >= 1, got {cfg.batch}")
        if cfg.qos is not None:
            cfg = replace(cfg, qos=cfg.qos.normalized())
        return cfg

    def with_overrides(self, overrides: Dict[str, Any]) -> "RunConfig":
        """Copy with keyword overrides; unknown keys raise."""
        if not overrides:
            return self
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(
                f"unknown RunConfig field(s) {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        return replace(self, **overrides)

    def to_json(self) -> Dict[str, Any]:
        """JSON-able view of the declarative knobs.

        This is the serving front's job-spec format: everything a
        remote caller can ask for survives the round trip; the live
        in-process objects (``resilience``, ``fault_plan``, ``elastic``,
        ``trace``, ``options`` and the QoS cancel token) do not — a
        service attaches its own.  Of the QoS policy, the declarative
        scalars (deadline, memory ceiling, fallback chain) are kept.
        """
        out: Dict[str, Any] = {
            "shape": list(self.shape) if self.shape is not None else None,
            "steps": int(self.steps),
            "seed": int(self.seed),
            "batch": int(self.batch),
            "scheme": self.scheme,
            "b": int(self.b),
            "core_widths": (list(self.core_widths)
                            if self.core_widths is not None else None),
            "uncut_dims": list(self.uncut_dims),
            "tile": list(self.tile) if self.tile is not None else None,
            "mutations": list(self.mutations),
            "backend": self.backend,
            "engine": self.engine,
            "threads": int(self.threads),
            "sanitize": bool(self.sanitize),
            "verify": bool(self.verify),
            "ranks": int(self.ranks),
            "axis": int(self.axis),
            "ghost": int(self.ghost) if self.ghost is not None else None,
            "check_divergence": bool(self.check_divergence),
            "max_phase_restarts": int(self.max_phase_restarts),
        }
        if self.qos is not None:
            out["qos"] = {
                "deadline_s": self.qos.deadline_s,
                "max_memory_bytes": self.qos.max_memory_bytes,
                "fallback": list(self.qos.fallback),
            }
        else:
            out["qos"] = None
        return out

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunConfig":
        """Build a config from :meth:`to_json` output (or hand-written
        JSON); unknown keys raise like :meth:`with_overrides`."""
        data = dict(data)
        qos_data = data.pop("qos", None)
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            if key in ("shape", "core_widths", "tile", "uncut_dims",
                       "mutations") and value is not None:
                value = tuple(value)
            kwargs[key] = value
        cfg = cls().with_overrides(kwargs)
        if qos_data:
            from repro.runtime.qos import QoSPolicy

            cfg = replace(cfg, qos=QoSPolicy(
                deadline_s=qos_data.get("deadline_s"),
                max_memory_bytes=qos_data.get("max_memory_bytes"),
                fallback=tuple(qos_data.get("fallback", ())),
            ))
        return cfg

    def tile_params(self) -> Tuple:
        """Schedule-construction parameters, for plan-cache identity.

        Everything that changes the built schedule without changing
        ``(spec, shape, steps, scheme)`` must appear here — tile depth,
        width overrides and planted mutations — so distinct tilings of
        one scheme never collide in the plan cache.
        """
        return (
            self.b,
            self.core_widths,
            self.uncut_dims,
            self.tile,
            *self.mutations,
        )
