"""Real wall-clock benchmarks of the NumPy executors.

Unlike the figure benches (simulated machine), these time the actual
region-application executors on this host — the honest single-core
substrate numbers.  Relative costs between schemes reflect NumPy
dispatch overhead per region, not compiled-kernel behaviour; see
EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import Grid, get_stencil, make_lattice
from repro.baselines import diamond_schedule, naive_schedule
from repro.core.paper2d import run_paper2d
from repro.core.schedules import tess_schedule
from repro.runtime.schedule import _execute_schedule
from repro.stencils import reference_sweep

SHAPE = (360, 360)
STEPS = 24
B = 6


@pytest.fixture(scope="module")
def spec():
    return get_stencil("heat2d")


@pytest.fixture(scope="module")
def expected(spec):
    g = Grid(spec, SHAPE, seed=0)
    return reference_sweep(spec, g, STEPS).copy()


def _run(spec, sched):
    g = Grid(spec, SHAPE, seed=0)
    return _execute_schedule(spec, g, sched)


def test_naive_sweep(benchmark, spec, expected):
    sched = naive_schedule(spec, SHAPE, STEPS)
    out = benchmark(_run, spec, sched)
    assert np.allclose(out, expected, rtol=1e-11)


def test_tessellation_merged(benchmark, spec, expected):
    lat = make_lattice(spec, SHAPE, B, core_widths=(6, 12))
    sched = tess_schedule(spec, SHAPE, lat, STEPS, merged=True)
    out = benchmark(_run, spec, sched)
    assert np.allclose(out, expected, rtol=1e-11)


def test_diamond(benchmark, spec, expected):
    sched = diamond_schedule(spec, SHAPE, B, STEPS)
    out = benchmark(_run, spec, sched)
    assert np.allclose(out, expected, rtol=1e-11)


def test_paper2d_artifact_code(benchmark, spec, expected):
    def run():
        g = Grid(spec, SHAPE, seed=0)
        return run_paper2d(spec, g, Bx=24, By=24, bt=6, steps=STEPS)

    out = benchmark(run)
    assert np.allclose(out, expected, rtol=1e-11)
