"""Address-stream generation for the cache simulator.

Turns a :class:`~repro.runtime.schedule.RegionSchedule` into the
line-granular memory access stream a single core would issue executing
it sequentially, and drives a :class:`~repro.machine.cache.CacheHierarchy`
with it.  Grids are laid out row-major with 8-byte elements; the two
ping-pong buffers live at disjoint base addresses.

Accesses are generated at cache-line granularity per region row (a
row of a rectangle touches a contiguous byte range per offset; offsets
along the unit-stride dimension collapse into one widened range, which
is also what real hardware sees).  Exact but slow — use on small
instances to validate the analytic traffic model.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.machine.cache import CacheHierarchy, SetAssociativeCache
from repro.machine.spec import MachineSpec
from repro.runtime.schedule import RegionSchedule
from repro.stencils.spec import StencilSpec


def _row_ranges(
    spec: StencilSpec,
    shape: Tuple[int, ...],
    region,
    t: int,
    itemsize: int,
    bases: Tuple[int, int],
) -> Iterator[Tuple[int, int, bool]]:
    """(start_byte, end_byte, is_write) ranges of one region update."""
    d = len(shape)
    padded = tuple(n + 2 * h for n, h in zip(shape, spec.halo))
    strides = [itemsize] * d
    for j in range(d - 2, -1, -1):
        strides[j] = strides[j + 1] * padded[j + 1]
    halo = spec.halo
    src_base = bases[t % 2]
    dst_base = bases[(t + 1) % 2]
    # unit-stride extents of the read set: min/max offset in last dim
    last_offs = [o[-1] for o in spec.offsets]
    lo_off, hi_off = min(last_offs), max(last_offs)
    # distinct non-unit-stride offset combinations
    lead_offs = sorted({o[:-1] for o in spec.offsets})
    outer = [range(lo, hi) for lo, hi in region[:-1]]
    (rlo, rhi) = region[-1]
    for idx in itertools.product(*outer):
        # source reads: one widened range per leading-offset combo
        for loff in lead_offs:
            base = src_base
            for j, (i, o, h) in enumerate(zip(idx, loff, halo[:-1])):
                base += (i + o + h) * strides[j]
            start = base + (rlo + lo_off + halo[-1]) * itemsize
            end = base + (rhi + hi_off + halo[-1]) * itemsize
            yield (start, end, False)
        # destination write range
        base = dst_base
        for j, (i, h) in enumerate(zip(idx, halo[:-1])):
            base += (i + h) * strides[j]
        yield (
            base + (rlo + halo[-1]) * itemsize,
            base + (rhi + halo[-1]) * itemsize,
            True,
        )


def simulate_schedule_cache(
    spec: StencilSpec,
    schedule: RegionSchedule,
    machine: MachineSpec,
    levels: Sequence[str] = ("l1", "l2", "llc"),
) -> CacheHierarchy:
    """Run a schedule's sequential access stream through the caches.

    Returns the hierarchy (inspect per-level stats and
    ``memory_traffic_bytes``).  Intended for small instances — cost is
    proportional to total lines touched.
    """
    size_of = {
        "l1": machine.l1_bytes,
        "l2": machine.l2_bytes,
        "llc": machine.llc_bytes,
    }
    hier = CacheHierarchy([
        SetAssociativeCache(size_of[name], machine.cache_line)
        for name in levels
    ])
    itemsize = np.dtype(spec.dtype).itemsize
    padded_points = 1
    for n, h in zip(schedule.shape, spec.halo):
        padded_points *= n + 2 * h
    buf_bytes = padded_points * itemsize
    # separate the two buffers by an odd number of cache lines to avoid
    # pathological aliasing between them
    gap = ((buf_bytes // machine.cache_line) + 17) * machine.cache_line
    bases = (0, gap)
    line = machine.cache_line
    for group in sorted(schedule.groups()):
        for task in schedule.groups()[group]:
            for a in task.actions:
                for start, end, is_write in _row_ranges(
                    spec, schedule.shape, a.region, a.t, itemsize, bases
                ):
                    first = start // line
                    last = (end - 1) // line if end > start else first - 1
                    for ln in range(first, last + 1):
                        hier.access(ln * line, is_write=is_write)
    return hier
