#!/usr/bin/env python3
"""Game of Life through the tessellation — including a periodic torus.

The paper runs Conway's Game of Life as one of its box-stencil
benchmarks (Fig. 9).  This example time-tiles a glider on a periodic
torus with the pointwise tessellation executor (stretched lattices
handle the non-multiple grid size, §3.6/Fig. 6) and shows the glider
arriving at exactly the position the plain step-by-step rule predicts.

Run:  python examples/game_of_life.py
"""

import numpy as np

from repro import Grid, get_stencil, run_pointwise
from repro.core.profiles import AxisProfile, TessLattice
from repro.stencils import reference_sweep


def render(board: np.ndarray) -> str:
    return "\n".join(
        "".join("#" if v else "." for v in row) for row in board
    )


def main() -> None:
    spec = get_stencil("life", boundary="periodic")
    shape = (18, 23)  # deliberately not a multiple of any block size
    steps = 24
    b = 3

    grid = Grid(spec, shape, init="zeros")
    board = grid.interior(0)
    # a glider heading south-east
    board[1, 2] = board[2, 3] = board[3, 1] = board[3, 2] = board[3, 3] = 1
    start = board.copy()

    lattice = TessLattice((
        AxisProfile.stretched(shape[0], b, periodic=True),
        AxisProfile.stretched(shape[1], b, periodic=True),
    ))
    out = run_pointwise(spec, grid, lattice, steps)

    ref_grid = Grid(spec, shape, init="zeros")
    ref_grid.interior(0)[...] = start
    ref = reference_sweep(spec, ref_grid, steps)

    assert np.array_equal(out, ref), "tessellated Life diverged!"
    # a glider moves one cell diagonally every 4 steps
    expect = np.roll(start, (steps // 4, steps // 4), axis=(0, 1))
    assert np.array_equal(out, expect), "glider did not translate!"

    print(f"t = 0:\n{render(start)}\n")
    print(f"t = {steps} (tessellated, periodic torus):\n{render(out)}\n")
    print(
        f"glider translated by ({steps // 4}, {steps // 4}) cells — "
        f"bit-identical to the naive rule, computed in time tiles of "
        f"depth {b} with zero redundant updates."
    )


if __name__ == "__main__":
    main()
