"""Analytic communication plan — §4.1's "efficient data communication
plan" computed from the real schedules.

For each stage, every block owned by rank ``r`` reads its update
regions dilated by one slope; the portion of that read set lying in a
*different* rank's slab must have been communicated.  This module
derives the per-(stage, rank-pair) volumes exactly from the block
geometry, giving the analytic counterpart of the executable band
exchange in :mod:`repro.distributed.exec` (which is deliberately
simpler and somewhat over-sends: whole bands, both buffers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.blocks import build_phase_plan
from repro.core.profiles import TessLattice
from repro.distributed.partition import SlabPartition
from repro.stencils.spec import StencilSpec, region_is_empty


@dataclass(frozen=True)
class CommPlanEntry:
    """Bytes rank ``dst`` must receive from ``src`` before a stage."""

    stage: int
    src: int
    dst: int
    bytes: int


def communication_plan(
    spec: StencilSpec,
    shape: Tuple[int, ...],
    lattice: TessLattice,
    ranks: int,
    axis: int = 0,
) -> List[CommPlanEntry]:
    """Per-stage inter-rank volumes for one phase of the tessellation.

    Volumes are exact unions of the out-of-slab read sets of each
    rank's blocks (computed per slab interval along the partition
    axis, full extent elsewhere).
    """
    part = SlabPartition(shape, ranks, axis=axis)
    bounds = part.bounds()
    slopes = tuple(p.sigma for p in lattice.profiles)
    plan = build_phase_plan(lattice, slopes)
    b = lattice.b
    itemsize = np.dtype(spec.dtype).itemsize
    other_extent = 1
    for j, n in enumerate(shape):
        if j != axis:
            other_extent *= int(n)

    out: List[CommPlanEntry] = []
    for si, sp in enumerate(plan.stages):
        # per (dst rank): set of axis coordinates needed from others,
        # tracked as a boolean line along the partition axis
        need: Dict[int, np.ndarray] = {
            r: np.zeros(shape[axis], dtype=bool) for r in range(ranks)
        }
        for blk in sp.blocks:
            bbox = blk.bounding_box(b, slopes, shape)
            if region_is_empty(bbox):
                continue
            owner = part.owner_of_box(bbox)
            lo, hi = bbox[axis]
            rlo = max(0, lo - slopes[axis])
            rhi = min(shape[axis], hi + slopes[axis])
            olo, ohi = bounds[owner]
            if rlo < olo:
                need[owner][rlo:olo] = True
            if rhi > ohi:
                need[owner][ohi:rhi] = True
        for dst, mask in need.items():
            if not mask.any():
                continue
            for src, (slo, shi) in enumerate(bounds):
                if src == dst:
                    continue
                pts = int(mask[slo:shi].sum()) * other_extent
                if pts:
                    out.append(CommPlanEntry(
                        stage=si, src=src, dst=dst,
                        bytes=pts * itemsize,
                    ))
    return out


def plan_totals(entries: List[CommPlanEntry]) -> Dict[str, float]:
    """Aggregate statistics of a communication plan."""
    total = sum(e.bytes for e in entries)
    per_stage: Dict[int, int] = {}
    for e in entries:
        per_stage[e.stage] = per_stage.get(e.stage, 0) + e.bytes
    return {
        "total_bytes": total,
        "messages": len(entries),
        "max_stage_bytes": max(per_stage.values(), default=0),
        "stages_with_comm": len(per_stage),
    }
