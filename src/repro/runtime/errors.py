"""Structured runtime errors and CLI exit codes.

The resilience layer turns arbitrary task failures into a small,
typed vocabulary so callers (the CLI, the test-suite, a future
service wrapper) can react programmatically instead of parsing
tracebacks:

* :class:`InjectedFault` — raised *by* the fault-injection harness
  (:mod:`repro.runtime.faults`) inside a task; models a worker crash;
* :class:`DeadlineExceeded` — a task overran the policy's soft
  deadline (models a stalled worker);
* :class:`ExecutionError` — terminal verdict of an executor: a group
  kept failing after retries, sequential degradation and
  checkpoint/restart; carries scheme/group/task/attempt context;
* :class:`GuardViolation` — a runtime invariant guard fired
  (non-finite values after a barrier group, structural pre-flight);
* :class:`GhostDivergenceError` — the distributed simulator's
  neighbour-consistency detector found ranks disagreeing on the
  authoritative values of a boundary band;
* :class:`SanitizerViolation` — the structural schedule sanitizer
  (:mod:`repro.runtime.sanitizer`) found a tessellation gap, double
  write, dependence violation, intra-group race or ghost-band breach
  *before* execution; carries the full violation list;
* :class:`StallTimeoutError` — the resilient executor's *wall-clock*
  deadline expired (a stalled worker would otherwise hang the run
  forever; the per-task soft deadline cannot see a sleep that never
  returns);
* :class:`RankLostError` / :class:`ExchangeTimeoutError` /
  :class:`ChecksumMismatchError` — the elastic process runtime's
  terminal verdicts (:mod:`repro.distributed.elastic`): a rank process
  died (or was killed as a straggler) and the respawn budget is spent,
  a boundary-band message never arrived within its retry budget, or a
  payload kept failing its CRC across retransmits;
* :class:`RunDeadlineExceeded` / :class:`RunCancelled` — the
  *run-level* QoS verdicts (:mod:`repro.runtime.qos`): the caller's
  :class:`~repro.runtime.qos.QoSPolicy` deadline expired at a
  cooperative check point, or its cancel token was tripped.  Distinct
  from the per-task :class:`DeadlineExceeded` soft deadline and the
  resilient executor's :class:`StallTimeoutError` wall clock, both of
  which are internal to one executor's recovery policy;
* :class:`QueueSaturated` / :class:`JobNotFound` — the durable job
  runtime's verdicts (:mod:`repro.service`): the bounded submission
  queue refused a job instead of buffering unboundedly (backpressure,
  never silent queueing), or a job id was addressed that the job
  store's journal has never seen;
* :class:`WorkerCrashed` — a process-isolated service worker died
  under a job (SIGKILL/segfault/OOM, detected by process exit or
  heartbeat silence).  Transient by default: the job's lease expires
  and it is requeued to resume from its newest checkpoint — unless it
  keeps killing workers, in which case the supervisor quarantines it
  as ``failed``/``"poisoned"``;
* :class:`ServiceDraining` — the service received SIGTERM and stopped
  admitting work (a :class:`QueueSaturated` subclass: same exit code,
  but HTTP **503** so clients can tell "retry elsewhere/later" apart
  from "shrink the request");
* :class:`StaleLeaseError` — an epoch-fenced store mutation (result
  commit, checkpoint seal, lease renewal) arrived from a worker
  incarnation whose lease was already reclaimed; the store refuses it
  so a stalled old worker can never overwrite its successor's work.

Exit-code mapping used by ``python -m repro`` (see
:func:`repro.cli.main`): usage/:class:`ValueError` → 2,
:class:`ExecutionError` → 3, :class:`GuardViolation` → 4,
:class:`SanitizerViolation` → 5, :class:`RankLostError` → 6,
:class:`ExchangeTimeoutError` → 7, :class:`ChecksumMismatchError` → 8,
:class:`RunDeadlineExceeded` → 9, :class:`QueueSaturated` → 10,
:class:`JobNotFound` → 11, :class:`WorkerCrashed` → 12.
"""

from __future__ import annotations

from typing import List, Optional

#: CLI exit codes (0 = success, 1 = numerical mismatch — legacy).
EXIT_OK = 0
EXIT_MISMATCH = 1
EXIT_USAGE = 2
EXIT_EXECUTION = 3
EXIT_GUARD = 4
EXIT_SANITIZER = 5
EXIT_RANK_LOST = 6
EXIT_EXCHANGE_TIMEOUT = 7
EXIT_CHECKSUM = 8
EXIT_DEADLINE = 9
EXIT_QUEUE_SATURATED = 10
EXIT_JOB_NOT_FOUND = 11
EXIT_WORKER_CRASHED = 12


class QueueSaturated(RuntimeError):
    """The durable job runtime's bounded queue refused a submission.

    Raised by :class:`repro.service.queue.JobQueue` (and the CLI's
    local-mode ``submit``) when accepting one more job would exceed the
    queue's depth bound or its admitted-footprint ceiling (the sum of
    per-job :func:`~repro.runtime.qos.estimate_peak_bytes` estimates).
    Backpressure by refusal, never by unbounded buffering: the caller
    sees exit code 10 (HTTP 429) immediately and can retry later or
    shrink the request.  Nothing was journaled — a refused submission
    leaves no trace in the job store.
    """

    def __init__(self, depth: int, capacity: int, *,
                 pending_bytes: int = 0,
                 limit_bytes: Optional[int] = None,
                 detail: str = ""):
        self.depth = depth
        self.capacity = capacity
        self.pending_bytes = pending_bytes
        self.limit_bytes = limit_bytes
        why = detail or (
            f"{depth}/{capacity} jobs queued" if limit_bytes is None else
            f"{depth}/{capacity} jobs queued, {pending_bytes} B of "
            f"{limit_bytes} B admitted footprint"
        )
        super().__init__(f"job queue saturated: {why}")


class JobNotFound(KeyError):
    """A job id was addressed that the job store has never seen.

    A :class:`KeyError` subclass, but mapped to its own exit code 11
    (HTTP 404) so callers can tell a missing *job* apart from a plain
    usage error.  Carries the offending id.
    """

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(f"unknown job {job_id!r}")

    def __str__(self) -> str:  # KeyError quotes its args; keep prose
        return self.args[0]


class ServiceDraining(QueueSaturated):
    """The service is draining (SIGTERM) and refuses new submissions.

    A :class:`QueueSaturated` subclass — the caller-side remedy is the
    same "come back later", and the CLI keeps exit code 10 — but the
    HTTP front maps it to **503** with ``{"state": "draining"}`` so a
    load balancer can tell a full queue (429, retry with backoff) from
    a terminating instance (503, fail over now).  In-flight and queued
    jobs stay journaled; only *new* admissions are refused.
    """

    def __init__(self, detail: str = ""):
        self.depth = 0
        self.capacity = 0
        self.pending_bytes = 0
        self.limit_bytes = None
        why = detail or "service is draining; new submissions refused"
        RuntimeError.__init__(self, why)


class StaleLeaseError(RuntimeError):
    """An epoch-fenced store mutation came from a reclaimed lease.

    Every lease acquisition mints a fresh monotonic *epoch*; result
    commits, checkpoint seals and lease renewals carry the epoch they
    were started under.  A worker incarnation whose lease was declared
    dead and reclaimed (heartbeat silence, crash takeover) may still be
    alive and finish late — the store refuses its writes instead of
    letting it overwrite the successor's.  The classic fencing-token
    discipline: detection at commit time, not trust in timeouts.
    """

    def __init__(self, job_id: str, epoch: int, current: int,
                 *, what: str = "commit"):
        self.job_id = job_id
        self.epoch = epoch
        self.current = current
        super().__init__(
            f"stale lease epoch {epoch} for job {job_id} "
            f"({what} refused; current epoch is {current})")


class InjectedFault(RuntimeError):
    """A deterministic fault fired by the injection harness."""

    def __init__(self, kind: str, group: int, task: Optional[int] = None):
        self.kind = kind
        self.group = group
        self.task = task
        where = f"group {group}" if task is None else f"group {group}, task {task}"
        super().__init__(f"injected {kind} fault in {where}")


class DeadlineExceeded(RuntimeError):
    """A task ran longer than the policy's soft per-task deadline."""

    def __init__(self, label: str, elapsed_s: float, deadline_s: float):
        self.label = label
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        super().__init__(
            f"task {label!r} took {elapsed_s * 1e3:.1f} ms "
            f"(deadline {deadline_s * 1e3:.1f} ms)"
        )


class ExecutionError(RuntimeError):
    """A schedule execution died; names the failing group/task.

    Raised by :func:`repro.runtime.threadpool.execute_threaded` on the
    first task failure (fail-fast semantics) and by
    :func:`repro.runtime.resilience.execute_resilient` once retries,
    sequential degradation and checkpoint restarts are exhausted.
    """

    def __init__(
        self,
        message: str,
        *,
        scheme: Optional[str] = None,
        group: Optional[int] = None,
        task_label: Optional[str] = None,
        attempts: int = 1,
    ):
        self.scheme = scheme
        self.group = group
        self.task_label = task_label
        self.attempts = attempts
        ctx = []
        if scheme is not None:
            ctx.append(f"scheme={scheme}")
        if group is not None:
            ctx.append(f"group={group}")
        if task_label:
            ctx.append(f"task={task_label!r}")
        if attempts > 1:
            ctx.append(f"attempts={attempts}")
        suffix = f" [{', '.join(ctx)}]" if ctx else ""
        super().__init__(f"{message}{suffix}")


class GuardViolation(ExecutionError):
    """A runtime invariant guard failed (non-finite sweep, pre-flight)."""


class SanitizerViolation(GuardViolation):
    """The schedule sanitizer found structural invariant violations.

    A :class:`GuardViolation` subclass (it is a pre-flight invariant
    guard), but mapped to its own exit code 5 so callers can tell a
    *structurally illegal schedule* apart from a runtime guard firing.
    ``violations`` holds the sanitizer's full
    :class:`~repro.runtime.sanitizer.Violation` list; the message
    names the first offender's step/group/task.
    """

    def __init__(self, scheme: str, violations: List):
        self.violations = list(violations)
        first = self.violations[0] if self.violations else None
        summary = first.describe() if first is not None else "unknown"
        extra = (f" (+{len(self.violations) - 1} more)"
                 if len(self.violations) > 1 else "")
        ExecutionError.__init__(
            self,
            f"schedule failed sanitizer: {summary}{extra}",
            scheme=scheme,
            group=getattr(first, "group", None),
            task_label=getattr(first, "task", None),
        )


class StallTimeoutError(ExecutionError):
    """The resilient executor's wall-clock deadline expired.

    A ``stall`` fault (or any genuinely wedged worker) can sleep past
    every per-task soft deadline; the wall-clock deadline bounds the
    *whole* execution so the suite/CI gets a structured error instead
    of a hang.  Not retryable: the budget is global, so the run is
    aborted on the spot rather than replayed.
    """

    def __init__(self, label: str, elapsed_s: float, deadline_s: float,
                 *, group: Optional[int] = None):
        self.label = label
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        ExecutionError.__init__(
            self,
            f"wall-clock deadline exceeded at {label!r}: "
            f"{elapsed_s:.3f}s elapsed > {deadline_s:.3f}s budget",
            group=group,
        )


class RunDeadlineExceeded(ExecutionError):
    """The caller's run-level QoS deadline expired.

    Raised by :meth:`repro.runtime.qos.RunBudget.check` at a
    cooperative boundary (executor entry, barrier group, time-tiled
    phase, coordinator poll).  Unlike the per-task soft
    :class:`DeadlineExceeded` and the resilient executor's
    :class:`StallTimeoutError`, this budget belongs to the *caller*:
    it spans the whole run attempt, is honoured identically by every
    backend, and maps to its own CLI exit code 9.  It is retryable on
    a *fallback* boundary only — a cheaper backend may still finish a
    fresh attempt within its own re-armed budget.
    """

    def __init__(self, where: str, elapsed_s: float, deadline_s: float):
        self.where = where
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        ExecutionError.__init__(
            self,
            f"run deadline exceeded at {where!r}: "
            f"{elapsed_s:.3f}s elapsed > {deadline_s:.3f}s budget",
        )


class RunCancelled(ExecutionError):
    """The caller tripped the run's cancel token.

    Cooperative: execution stops at the next budget check point with
    buffers and checkpoint directories cleaned up.  Never retried by
    the fallback chain — cancellation is a caller decision, not a
    backend failure.
    """

    def __init__(self, where: str):
        self.where = where
        ExecutionError.__init__(self, f"run cancelled at {where!r}")


class RankLostError(ExecutionError):
    """A rank process died (or was culled as a straggler) for good.

    Raised by the elastic coordinator once a lost rank cannot be (or
    may no longer be) respawned: the run is not resilient, or the
    respawn budget is exhausted.  ``cause`` distinguishes a dead
    process (``"dead"``), a missed heartbeat (``"heartbeat"``) and a
    progress stall (``"straggler"``).
    """

    def __init__(self, rank: int, cause: str, *, respawns: int = 0,
                 detail: str = ""):
        self.rank = rank
        self.cause = cause
        self.respawns = respawns
        extra = f": {detail}" if detail else ""
        ExecutionError.__init__(
            self,
            f"rank {rank} lost ({cause}) after {respawns} respawn(s){extra}",
            task_label=f"rank {rank}",
            attempts=respawns + 1,
        )


class WorkerCrashed(ExecutionError):
    """A process-isolated service worker died while running a job.

    Raised supervisor-side when a worker child's process exits (killed,
    segfaulted, OOM'd) or its heartbeat goes silent past the watchdog
    timeout while a job was assigned to it.  ``cause`` distinguishes a
    dead process (``"exit"``), a missed heartbeat (``"heartbeat"``), a
    child that hit its rlimit (``"oom"``) and a payload that failed its
    CRC (``"checksum"``).  Transient by default — the job requeues and
    resumes from its newest checkpoint — but a job that keeps crashing
    workers is quarantined as ``failed``/``"poisoned"`` after
    ``max_worker_crashes`` attempts.  CLI exit code 12.
    """

    def __init__(self, job_id: str, worker: int, cause: str, *,
                 exit_code: "Optional[int]" = None, detail: str = ""):
        self.job_id = job_id
        self.worker = worker
        self.cause = cause
        self.exit_code = exit_code
        extra = f": {detail}" if detail else ""
        code = f", exit code {exit_code}" if exit_code is not None else ""
        ExecutionError.__init__(
            self,
            f"worker {worker} crashed ({cause}{code}) while running "
            f"job {job_id}{extra}",
            task_label=f"worker {worker}",
        )


class ExchangeTimeoutError(ExecutionError):
    """A boundary-band message never arrived within the retry budget.

    Raised (via the coordinator) when a receiving rank has exhausted
    its per-message timeout + exponential-backoff retries waiting for a
    neighbour's band.  A transient drop is healed by a retransmit
    request; this error means the drop was persistent.
    """

    def __init__(self, stage: int, src: int, dst: int, attempts: int):
        self.stage = stage
        self.src = src
        self.dst = dst
        ExecutionError.__init__(
            self,
            f"boundary band {src}->{dst} missing at stage {stage} "
            f"after {attempts} attempt(s)",
            group=stage,
            task_label=f"rank {dst}",
            attempts=attempts,
        )


class ChecksumMismatchError(ExecutionError):
    """A boundary-band payload kept failing its CRC across retries.

    Every band carries a CRC32 of its serialized payload; a mismatch at
    receive time means the message was corrupted in flight (the
    ``flip_bits`` fault, or real memory/link corruption).  Transient
    corruption is healed by a retransmit; this error means every
    retransmit was corrupted too.
    """

    def __init__(self, stage: int, src: int, dst: int, attempts: int):
        self.stage = stage
        self.src = src
        self.dst = dst
        ExecutionError.__init__(
            self,
            f"boundary band {src}->{dst} failed checksum at stage {stage} "
            f"{attempts} time(s)",
            group=stage,
            task_label=f"rank {dst}",
            attempts=attempts,
        )


class GhostDivergenceError(GuardViolation):
    """Neighbouring ranks disagree on an exchanged boundary band.

    Fired by the distributed simulator's divergence detector: after a
    stage exchange, the two ranks of a neighbour pair must agree on
    every point either of them updated inside the shared
    ``±ghost``-wide window around their slab boundary.  A dropped,
    corrupted or under-sized exchange breaks that agreement.
    """

    def __init__(self, stage: int, rank_a: int, rank_b: int,
                 mismatched_points: int):
        self.stage = stage
        self.rank_a = rank_a
        self.rank_b = rank_b
        self.mismatched_points = mismatched_points
        ExecutionError.__init__(
            self,
            f"ghost-band divergence after stage {stage}: ranks "
            f"{rank_a}/{rank_b} disagree on {mismatched_points} "
            f"boundary point(s)",
            group=stage,
        )
