"""Tests for the stencil operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencils.operators import (
    GameOfLifeOperator,
    LinearStencilOperator,
    box_offsets,
    star_offsets,
)


class TestOffsetGenerators:
    def test_star_counts(self):
        assert len(star_offsets(1, 1)) == 3
        assert len(star_offsets(2, 1)) == 5
        assert len(star_offsets(3, 1)) == 7
        assert len(star_offsets(1, 2)) == 5

    def test_box_counts(self):
        assert len(box_offsets(1)) == 3
        assert len(box_offsets(2)) == 9
        assert len(box_offsets(3)) == 27
        assert len(box_offsets(2, order=2)) == 25

    def test_star_is_subset_of_box(self):
        assert set(star_offsets(2, 1)) <= set(box_offsets(2, 1))

    def test_center_included(self):
        assert (0, 0) in star_offsets(2, 1)
        assert (0, 0, 0) in box_offsets(3, 1)


class TestLinearOperator:
    def test_slopes(self):
        op = LinearStencilOperator([(-2,), (0,), (1,)], [1, 1, 1])
        assert op.slopes == (2,)

    def test_coeff_count_mismatch(self):
        with pytest.raises(ValueError):
            LinearStencilOperator([(0,)], [1.0, 2.0])

    def test_duplicate_offsets(self):
        with pytest.raises(ValueError):
            LinearStencilOperator([(0,), (0,)], [1, 1])

    def test_mixed_rank_offsets(self):
        with pytest.raises(ValueError):
            LinearStencilOperator([(0,), (0, 1)], [1, 1])

    def test_empty_offsets(self):
        with pytest.raises(ValueError):
            LinearStencilOperator([], [])

    def test_flops(self):
        op = LinearStencilOperator([(-1,), (0,), (1,)], [1, 1, 1])
        assert op.flops_per_point == 5

    def test_apply_identity(self):
        op = LinearStencilOperator([(0,)], [1.0])
        src = np.arange(6, dtype=np.float64)
        dst = np.zeros(6)
        op.apply(src, dst, ((0, 6),), (0,))
        assert np.array_equal(src, dst)

    @given(st.integers(4, 20))
    @settings(max_examples=20, deadline=None)
    def test_wrapped_matches_manual_roll(self, n):
        rng = np.random.default_rng(n)
        u = rng.random(n)
        op = LinearStencilOperator([(-1,), (0,), (1,)], [0.2, 0.5, 0.3])
        out = op.apply_wrapped(u)
        manual = 0.2 * np.roll(u, 1) + 0.5 * u + 0.3 * np.roll(u, -1)
        assert np.allclose(out, manual)

    def test_wrapped_2d(self):
        rng = np.random.default_rng(0)
        u = rng.random((5, 6))
        op = LinearStencilOperator([(0, 0), (1, 1)], [0.5, 0.5])
        out = op.apply_wrapped(u)
        assert np.allclose(out, 0.5 * u + 0.5 * np.roll(u, (-1, -1), (0, 1)))

    def test_dtype_override(self):
        op = LinearStencilOperator([(0,)], [1.0], dtype=np.float32)
        assert op.dtype == np.float32


class TestGameOfLife:
    def test_blinker_oscillates(self):
        op = GameOfLifeOperator()
        u = np.zeros((5, 5), dtype=np.uint8)
        u[2, 1:4] = 1  # horizontal blinker
        v = np.zeros_like(u)
        op.apply(u, v, ((0, 3), (0, 3)), (1, 1))
        # interior of padded (5,5) is the 3x3 core; the blinker's centre
        # column should now be vertical
        assert v[2, 2] == 1 and v[1, 2] == 1 and v[3, 2] == 1
        assert v[2, 1] == 0 and v[2, 3] == 0

    def test_block_still_life_wrapped(self):
        op = GameOfLifeOperator()
        u = np.zeros((6, 6), dtype=np.uint8)
        u[2:4, 2:4] = 1
        out = op.apply_wrapped(u)
        assert np.array_equal(out, u)

    def test_glider_period_wrapped(self):
        op = GameOfLifeOperator()
        u = np.zeros((8, 8), dtype=np.uint8)
        u[1, 2] = u[2, 3] = u[3, 1] = u[3, 2] = u[3, 3] = 1
        v = u.copy()
        for _ in range(4 * 8):  # glider translates by (1,1) every 4 steps
            v = op.apply_wrapped(v)
        assert np.array_equal(v, u)

    def test_dtype_and_slopes(self):
        op = GameOfLifeOperator()
        assert op.dtype == np.uint8
        assert op.slopes == (1, 1)
        assert len(op.offsets) == 9
