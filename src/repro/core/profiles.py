"""Per-dimension distance profiles — the generalised tessellation lattice.

The paper's scheme assigns every grid point a per-dimension distance
``a_j ∈ [0, b]`` to the nearest ``B_0`` centre; all stage windows follow
from those distances (see :mod:`repro.core.timefunc`).  This module
generalises the centre lattice to an arbitrary family of per-dimension
distance functions subject to one local condition, which is exactly
what the correctness proofs need:

    **Validity.**  ``a_j : [0, N_j) → [0, b]`` with
    ``|a_j(x) - a_j(y)| ≤ 1`` whenever ``|x - y| ≤ σ_j``
    (``σ_j`` = stencil slope along ``j``; wrap-around included when
    periodic).

Any valid profile family yields a correct, deadlock-free, redundancy-
free tessellation schedule (tested property): the stage windows still
telescope to ``b`` updates per point (Theorem 3.5) and neighbouring
windows interleave safely (Theorem 3.6), because both proofs only use
the Lipschitz property.  This one abstraction subsumes:

* the paper's uniform lattice (period ``2b``) — :meth:`AxisProfile.uniform`;
* §4.2 *coarsening* (per-dimension core width / period) —
  :meth:`AxisProfile.coarse`;
* §3.6 *supernodes* for high-order stencils — the ``ceil(dist/σ)``
  scaling built into every constructor;
* §3.6 *stretched blocks* for grids whose size is not a multiple of the
  period (Fig. 6), periodic or not — :meth:`AxisProfile.stretched` and
  :meth:`AxisProfile.from_cores`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

Interval = Tuple[int, int]


def _ceil_div(x: np.ndarray | int, k: int):
    return (x + k - 1) // k


@dataclass(frozen=True)
class AxisProfile:
    """Distance profile of one grid dimension.

    Attributes
    ----------
    n: interior grid size along this dimension.
    b: time-tile depth (max distance value).
    sigma: stencil slope along this dimension.
    periodic: whether distances wrap around.
    dist: per-point distance **in points** to the nearest core
        (``0`` on cores).  The capped, slope-scaled tessellation
        distance is :meth:`a`.
    cores: core intervals ``[lo, hi)`` in *extended* coordinates — for
        non-periodic profiles this includes virtual cores outside
        ``[0, n)`` whose dilations reach into the domain; for periodic
        profiles the intervals partition one wrap of the circle.
    core_width / period: structural parameters when the profile is
        periodic-in-structure (uniform/coarse); ``None`` for irregular
        explicit-core profiles.
    """

    n: int
    b: int
    sigma: int
    periodic: bool
    dist: np.ndarray
    cores: Tuple[Interval, ...]
    core_width: Optional[int] = None
    period: Optional[int] = None
    phase: Optional[int] = None

    # -- constructors --------------------------------------------------

    @staticmethod
    def uniform(n: int, b: int, sigma: int = 1, phase: int = 0,
                periodic: bool = False) -> "AxisProfile":
        """Paper's uniform lattice: cores of width ``σ`` and period ``2bσ``.

        For ``σ = 1`` this is exactly the ``B_0`` centre lattice of §3.3
        (one centre point every ``2b``); for higher-order stencils the
        ``σ``-wide core is the supernode of Fig. 5.
        """
        return AxisProfile.coarse(
            n, b, sigma=sigma, core_width=sigma, period=2 * b * sigma,
            phase=phase, periodic=periodic,
        )

    @staticmethod
    def coarse(n: int, b: int, sigma: int = 1, core_width: int = 1,
               period: Optional[int] = None, phase: int = 0,
               periodic: bool = False) -> "AxisProfile":
        """§4.2 coarsened lattice: cores of ``core_width`` every ``period``.

        The default period ``core_width + 2(b-1)σ + core_width`` makes
        the starting plateau as wide as the core — the §4.3 merging
        condition ("the distance between two ``B_0`` along a dimension
        should equal the ending block size").
        """
        _check_pos("n", n)
        _check_pos("b", b)
        _check_pos("sigma", sigma)
        _check_pos("core_width", core_width)
        if period is None:
            period = 2 * core_width + 2 * (b - 1) * sigma
        if period < core_width + 1:
            raise ValueError(
                f"period {period} too small for core_width {core_width}"
            )
        phase %= period
        if periodic and n % period != 0:
            raise ValueError(
                f"periodic uniform/coarse profile needs n % period == 0 "
                f"(n={n}, period={period}); use AxisProfile.stretched"
            )
        x = np.arange(n, dtype=np.int64)
        y = (x - phase) % period
        inside = y < core_width
        up = y - (core_width - 1)       # distance walking up from the core
        down = period - y               # distance to the next core upward
        dist = np.where(inside, 0, np.minimum(up, down))
        # enumerate cores whose gaps/dilations can reach the domain
        margin = period + b * sigma
        k_lo = -((phase + margin) // period) - 1
        k_hi = (n + margin - phase) // period + 1
        cores = tuple(
            (phase + k * period, phase + k * period + core_width)
            for k in range(k_lo, k_hi + 1)
            if phase + k * period + core_width + margin > 0
            and phase + k * period - margin < n
        )
        return AxisProfile(
            n=n, b=b, sigma=sigma, periodic=periodic, dist=dist,
            cores=cores, core_width=core_width, period=period, phase=phase,
        )

    @staticmethod
    def uncut(n: int, b: int, sigma: int = 1,
              periodic: bool = False) -> "AxisProfile":
        """An axis left uncut: constant distance ``b`` everywhere.

        Constant profiles are trivially valid (Lipschitz) and make the
        axis act as a permanent *glued* dimension: no stage ever uses
        it as an ending dimension, so blocks span its full extent.
        Combining one uniform axis with ``d-1`` uncut axes yields
        exactly the classic diamond tiling along that axis (the paper's
        observation that its 1D scheme "produces the same diamond
        tiling codes" as Pluto) — and is how the Pluto-style baseline
        and the "leave the unit-stride dimension uncut" configuration
        (§4.2) are expressed in this framework.
        """
        _check_pos("n", n)
        _check_pos("b", b)
        _check_pos("sigma", sigma)
        dist = np.full(n, b * sigma, dtype=np.int64)
        return AxisProfile(
            n=n, b=b, sigma=sigma, periodic=periodic, dist=dist, cores=(),
        )

    @staticmethod
    def from_cores(n: int, b: int, cores: Sequence[Interval],
                   sigma: int = 1, periodic: bool = False) -> "AxisProfile":
        """Profile from an explicit core interval list (stretched lattices).

        Core intervals must lie inside ``[0, n)``, be disjoint and
        sorted.  Distances are computed by a linear two-pass transform
        (with wrap-around when periodic).
        """
        _check_pos("n", n)
        _check_pos("b", b)
        _check_pos("sigma", sigma)
        cores = tuple((int(lo), int(hi)) for lo, hi in cores)
        if not cores:
            raise ValueError("at least one core interval is required")
        prev_hi = None
        for lo, hi in cores:
            if not (0 <= lo < hi <= n):
                raise ValueError(f"core interval {(lo, hi)} outside [0, {n})")
            if prev_hi is not None and lo < prev_hi:
                raise ValueError("core intervals must be sorted and disjoint")
            prev_hi = hi
        dist = _distance_transform(n, cores, periodic)
        return AxisProfile(
            n=n, b=b, sigma=sigma, periodic=periodic, dist=dist, cores=cores,
        )

    @staticmethod
    def stretched(n: int, b: int, sigma: int = 1, core_width: Optional[int] = None,
                  period: Optional[int] = None,
                  periodic: bool = False) -> "AxisProfile":
        """Fig. 6 stretching: regular cores plus one stretched gap.

        Lays down as many full periods as fit in ``n`` and stretches the
        final gap to absorb the remainder, so grids whose size is not a
        multiple of the block period still get a valid tessellation
        (the stretched region becomes the paper's hexagonal block:
        its points take all ``b`` updates in one intermediate stage).
        """
        if core_width is None:
            core_width = sigma
        if period is None:
            period = 2 * core_width + 2 * (b - 1) * sigma
        if n < period:
            # single stretched cell: one core at the origin
            return AxisProfile.from_cores(
                n, b, [(0, min(core_width, n))], sigma=sigma, periodic=periodic
            )
        k = n // period
        cores = [(j * period, j * period + core_width) for j in range(k)]
        return AxisProfile.from_cores(n, b, cores, sigma=sigma, periodic=periodic)

    # -- derived quantities ---------------------------------------------

    def a(self) -> np.ndarray:
        """Capped slope-scaled tessellation distance, ``min(b, ⌈dist/σ⌉)``."""
        return np.minimum(self.b, _ceil_div(self.dist, self.sigma)).astype(np.int64)

    def plateaus(self) -> Tuple[Interval, ...]:
        """Maximal intervals where ``a == b`` (starting regions of ``B_d``).

        For structurally periodic profiles these are derived from the
        core list in extended coordinates (including virtual plateaus
        partially outside the domain); for explicit-core profiles they
        are found by scanning the distance array.
        """
        theta = (self.b - 1) * self.sigma + 1  # dist threshold for a == b
        if self.period is not None:
            out: List[Interval] = []
            for lo, hi in self.cores:
                # plateau in the gap that starts at this core's hi edge
                plo = hi + theta - 1
                phi = lo + self.period - theta + 1
                if phi > plo:
                    out.append((plo, phi))
            return tuple(out)
        return _plateau_scan(self.a(), self.b, self.n, self.periodic)

    def shifted_to_plateaus(self) -> "AxisProfile":
        """The alternate-level profile for §4.3 merging.

        Returns a profile whose cores sit exactly on this profile's
        plateaus — valid only when plateau width equals core width
        (the merging condition).  Used by the merged executor to
        alternate lattice levels between phases.
        """
        if not self.cores:
            # uncut axis: constant profile, shifting is the identity
            return self
        if self.period is None or self.core_width is None:
            raise ValueError("merging requires a structurally periodic profile")
        plateau_width = self.period - self.core_width - 2 * (self.b - 1) * self.sigma
        if plateau_width != self.core_width:
            raise ValueError(
                f"merging condition violated: plateau width {plateau_width} "
                f"!= core width {self.core_width} "
                f"(choose period = 2*core_width + 2*(b-1)*sigma)"
            )
        new_phase = (self.phase + self.core_width + (self.b - 1) * self.sigma)
        return AxisProfile.coarse(
            self.n, self.b, sigma=self.sigma, core_width=self.core_width,
            period=self.period, phase=new_phase, periodic=self.periodic,
        )

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Raise if the profile violates the validity condition."""
        av = self.a()
        if av.shape != (self.n,):
            raise ValueError("distance array has wrong length")
        if av.min() < 0 or av.max() > self.b:
            raise ValueError("distances out of range [0, b]")
        for delta in range(1, self.sigma + 1):
            if self.n > delta:
                if np.abs(av[delta:] - av[:-delta]).max(initial=0) > 1:
                    raise ValueError(
                        f"profile is not 1-Lipschitz at slope offset {delta}"
                    )
            if self.periodic:
                wrapped = np.abs(av[:delta] - av[self.n - delta:])
                if wrapped.max(initial=0) > 1:
                    raise ValueError(
                        f"periodic profile violates Lipschitz across the wrap "
                        f"at offset {delta}"
                    )


def _distance_transform(n: int, cores: Sequence[Interval],
                        periodic: bool) -> np.ndarray:
    """1-D distance-to-core transform, O(n), optional wrap-around."""
    big = np.int64(1) << 40
    base = np.full(n, big, dtype=np.int64)
    for lo, hi in cores:
        base[lo:hi] = 0
    if periodic:
        # three copies make every wrapped path visible to the linear scans
        work = np.concatenate([base, base, base])
    else:
        work = base.copy()
    idx = np.arange(len(work), dtype=np.int64)
    fwd = idx + np.minimum.accumulate(work - idx)
    bwd = -idx + np.minimum.accumulate((work + idx)[::-1])[::-1]
    dist = np.minimum(fwd, bwd)
    if periodic:
        dist = dist[n:2 * n]
    return np.minimum(dist, big)


def _plateau_scan(a: np.ndarray, b: int, n: int,
                  periodic: bool) -> Tuple[Interval, ...]:
    """Maximal runs of ``a == b`` (wrap-joined runs kept split)."""
    mask = a == b
    if not mask.any():
        return ()
    idx = np.flatnonzero(mask)
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate([[idx[0]], idx[breaks + 1]])
    ends = np.concatenate([idx[breaks] + 1, [idx[-1] + 1]])
    return tuple((int(s), int(e)) for s, e in zip(starts, ends))


@dataclass(frozen=True)
class TessLattice:
    """A full d-dimensional tessellation lattice: one profile per axis.

    The lattice ties the per-dimension profiles to a common time-tile
    depth ``b`` and provides the batched distance arrays executors use.
    """

    profiles: Tuple[AxisProfile, ...]

    def __post_init__(self):
        if not self.profiles:
            raise ValueError("at least one axis profile required")
        bs = {p.b for p in self.profiles}
        if len(bs) != 1:
            raise ValueError(f"all profiles must share one depth b, got {bs}")

    @staticmethod
    def uniform(shape: Sequence[int], b: int, slopes: Sequence[int] | None = None,
                periodic: bool = False, phases: Sequence[int] | None = None
                ) -> "TessLattice":
        d = len(shape)
        slopes = tuple(slopes) if slopes is not None else (1,) * d
        phases = tuple(phases) if phases is not None else (0,) * d
        return TessLattice(tuple(
            AxisProfile.uniform(int(n), b, sigma=s, phase=ph, periodic=periodic)
            for n, s, ph in zip(shape, slopes, phases)
        ))

    @staticmethod
    def coarse(shape: Sequence[int], b: int, slopes: Sequence[int] | None = None,
               core_widths: Sequence[int] | None = None,
               periods: Sequence[Optional[int]] | None = None,
               phases: Sequence[int] | None = None,
               periodic: bool = False) -> "TessLattice":
        d = len(shape)
        slopes = tuple(slopes) if slopes is not None else (1,) * d
        core_widths = tuple(core_widths) if core_widths is not None else slopes
        periods = tuple(periods) if periods is not None else (None,) * d
        phases = tuple(phases) if phases is not None else (0,) * d
        return TessLattice(tuple(
            AxisProfile.coarse(int(n), b, sigma=s, core_width=w, period=p,
                               phase=ph, periodic=periodic)
            for n, s, w, p, ph in zip(shape, slopes, core_widths, periods, phases)
        ))

    @property
    def b(self) -> int:
        return self.profiles[0].b

    @property
    def ndim(self) -> int:
        return len(self.profiles)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(p.n for p in self.profiles)

    def distance_arrays(self) -> List[np.ndarray]:
        """Per-axis capped distance vectors ``a_j`` (length ``N_j``)."""
        return [p.a() for p in self.profiles]

    def validate(self) -> None:
        for p in self.profiles:
            p.validate()

    def shifted_to_plateaus(self) -> "TessLattice":
        return TessLattice(tuple(p.shifted_to_plateaus() for p in self.profiles))


def _check_pos(name: str, v: int) -> None:
    if v < 1:
        raise ValueError(f"{name} must be >= 1, got {v}")
