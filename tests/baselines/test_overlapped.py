"""Tests for overlapped (ghost-zone) tiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import execute_overlapped, overlapped_schedule
from repro.runtime import schedule_stats, verify_schedule
from repro.runtime.schedule import _execute_schedule
from repro.stencils import (
    Grid,
    d1p5,
    game_of_life,
    heat1d,
    heat2d,
    heat3d,
)


class TestSchedule:
    @pytest.mark.parametrize("factory,shape,tile,bt", [
        (heat1d, (40,), (10,), 3),
        (d1p5, (50,), (12,), 2),
        (heat2d, (18, 17), (6, 6), 2),
        (heat3d, (9, 10, 8), (4, 4, 4), 2),
        (game_of_life, (14, 14), (5, 5), 3),
    ])
    def test_valid(self, factory, shape, tile, bt):
        spec = factory()
        sched = overlapped_schedule(spec, shape, 2 * bt + 1, tile, bt)
        assert verify_schedule(spec, sched)

    def test_redundancy_grows_with_bt(self):
        spec = heat2d()
        shape, tile = (32, 32), (8, 8)
        red = [
            schedule_stats(
                overlapped_schedule(spec, shape, 8, tile, bt)
            )["redundancy"]
            for bt in (1, 2, 4)
        ]
        assert red[0] < red[1] < red[2]
        assert red[0] == 0.0  # bt=1 has no halo recomputation

    def test_private_flag_set(self):
        spec = heat1d()
        sched = overlapped_schedule(spec, (20,), 4, (5,), 2)
        assert sched.private_tasks

    def test_generic_executor_refuses(self):
        spec = heat1d()
        sched = overlapped_schedule(spec, (20,), 4, (5,), 2)
        g = Grid(spec, (20,), seed=0)
        with pytest.raises(ValueError, match="private"):
            _execute_schedule(spec, g, sched)

    def test_one_group_per_time_tile(self):
        spec = heat1d()
        sched = overlapped_schedule(spec, (20,), 9, (5,), 3)
        assert sched.num_groups == 3

    def test_bad_args(self):
        spec = heat1d()
        with pytest.raises(ValueError):
            overlapped_schedule(spec, (20,), 4, (5,), 0)
        with pytest.raises(ValueError):
            overlapped_schedule(spec, (20,), -1, (5,), 2)
        with pytest.raises(ValueError):
            overlapped_schedule(spec, (20,), 4, (0,), 2)


class TestExecutor:
    @given(st.integers(10, 50), st.integers(2, 9), st.integers(1, 4),
           st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_random_1d(self, n, tile, bt, steps):
        spec = heat1d()
        sched = overlapped_schedule(spec, (n,), steps, (tile,), bt)
        assert verify_schedule(spec, sched, seed=n)

    def test_life_exact(self):
        spec = game_of_life()
        sched = overlapped_schedule(spec, (16, 13), 6, (5, 4), 2)
        assert verify_schedule(spec, sched)

    def test_grid_shape_mismatch(self):
        spec = heat1d()
        sched = overlapped_schedule(spec, (20,), 4, (5,), 2)
        g = Grid(spec, (21,), seed=0)
        with pytest.raises(ValueError):
            execute_overlapped(spec, g, sched)
