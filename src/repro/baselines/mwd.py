"""Girih-style multicore wavefront diamond (MWD) blocking [37, 38].

Girih combines diamond tiling along one spatial dimension with a
multi-threaded *intra-tile* wavefront: a group of cores sharing a
last-level cache cooperates on one diamond, marching through its time
steps in lock-step so the diamond's working set stays resident in the
shared LLC — which is why Girih shows the lowest memory traffic on
Heat-3D in the paper's Figure 12.

Structure emitted here: per phase and diamond family, diamonds are
processed in batches of ``concurrent_tiles`` (one diamond per thread
group / socket, like Girih's thread-group decomposition); within a
batch the per-step rows are split into ``chunks`` tasks along one
spatial axis and the batch marches step-locked (one cheap wavefront
synchronisation per step, ``group_sync_cost < 1``).  Diamonds of one
family are independent (tessellation stage property), so batch order
is free; batching is what keeps the in-flight working set inside the
LLC.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.diamond import diamond_lattice
from repro.core.blocks import enumerate_stage_blocks
from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.stencils.spec import StencilSpec, region_is_empty


def _split_region(region, dim: int, chunks: int):
    lo, hi = region[dim]
    n = hi - lo
    if n <= 0:
        return
    k = min(chunks, n)
    bounds = [lo + round(i * n / k) for i in range(k + 1)]
    for i in range(k):
        if bounds[i + 1] > bounds[i]:
            yield tuple(
                (bounds[i], bounds[i + 1]) if j == dim else r
                for j, r in enumerate(region)
            )


def mwd_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    b: int,
    steps: int,
    chunks: int = 12,
    concurrent_tiles: int = 2,
    cut_dim: int = 0,
    chunk_dim: int | None = None,
) -> RegionSchedule:
    """MWD blocking: diamonds along ``cut_dim``, chunked wavefronts.

    ``chunks`` is the thread-group size (cores per cooperating group),
    ``concurrent_tiles`` how many diamonds are in flight at once (one
    per thread group — 2 on the paper's two-socket machine);
    ``chunk_dim`` (default: the last axis other than ``cut_dim``) is
    the axis the cooperative threads split.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if chunks < 1 or concurrent_tiles < 1:
        raise ValueError("chunks and concurrent_tiles must be >= 1")
    shape = tuple(int(n) for n in shape)
    d = spec.ndim
    if chunk_dim is None:
        others = [j for j in range(d) if j != cut_dim]
        chunk_dim = others[-1] if others else cut_dim
    if not 0 <= chunk_dim < d:
        raise ValueError(f"chunk_dim {chunk_dim} out of range")
    if any(n == 0 for n in shape):
        # empty interior: nothing to update, a valid empty schedule
        return RegionSchedule(scheme="mwd", shape=shape, steps=steps)
    lattice = diamond_lattice(spec, shape, b, cut_dims=(cut_dim,))
    slopes = tuple(p.sigma for p in lattice.profiles)
    sched = RegionSchedule(scheme="mwd", shape=shape, steps=steps)
    sched.group_sync_cost = 0.2  # cheap intra-group wavefront sync
    group = 0
    tt = 0
    while tt < steps:
        span = min(b, steps - tt)
        for stage in range(d + 1):
            blocks = list(enumerate_stage_blocks(lattice, stage, slopes))
            if not blocks:
                continue
            for batch_lo in range(0, len(blocks), concurrent_tiles):
                batch = blocks[batch_lo:batch_lo + concurrent_tiles]
                for s in range(span):
                    emitted = False
                    for blk_idx, blk in enumerate(batch):
                        region = blk.region_at(s, b, slopes, shape)
                        if region_is_empty(region):
                            continue
                        for c_idx, piece in enumerate(
                            _split_region(region, chunk_dim, chunks)
                        ):
                            sched.add(
                                group,
                                [RegionAction(t=tt + s, region=piece)],
                                label=(f"t{tt}:st{stage}:"
                                       f"d{batch_lo + blk_idx}:s{s}:c{c_idx}"),
                            )
                            emitted = True
                    if emitted:
                        group += 1
        tt += b
    return sched
