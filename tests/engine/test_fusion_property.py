"""Property test: plan fusion preserves the sanitizer's invariants.

:meth:`CompiledPlan.as_schedule` re-expresses the compiled stream —
after parity resolution, same-step rectangle fusion and batching — as
a plain RegionSchedule (one barrier group per same-step layer).  For
any valid tessellation lattice, that reconstructed schedule must still
pass the full structural sanitizer: exact tessellation (Theorem 3.5),
ping-pong dependence legality (Theorem 3.6) and intra-group race
freedom.  Fusion that merged two rectangles across a tessellation
boundary, dropped cells, or double-covered a point would fail here.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Grid, get_stencil
from repro.baselines import naive_schedule, spatial_schedule
from repro.core import make_lattice
from repro.core.schedules import tess_schedule
from repro.engine import compile_plan
from repro.engine.plan import _execute_plan
from repro.runtime import sanitize_schedule
from repro.runtime.schedule import _execute_schedule

pytestmark = pytest.mark.engine


lattice_cases = st.tuples(
    st.integers(min_value=2, max_value=6),        # b
    st.integers(min_value=40, max_value=90),      # n
    st.integers(min_value=1, max_value=20),       # steps
    st.booleans(),                                # merged
)


@given(lattice_cases)
@settings(max_examples=25, deadline=None)
def test_fusion_preserves_tessellation_1d(case):
    b, n, steps, merged = case
    spec = get_stencil("heat1d")
    lat = make_lattice(spec, (n,), b)
    sched = tess_schedule(spec, (n,), lat, steps, merged=merged)
    plan = compile_plan(spec, sched)
    report = sanitize_schedule(spec, plan.as_schedule())
    assert report.ok, report.describe()


@given(st.tuples(
    st.integers(min_value=2, max_value=4),        # b
    st.integers(min_value=24, max_value=40),      # n0
    st.integers(min_value=24, max_value=40),      # n1
    st.integers(min_value=1, max_value=9),        # steps
))
@settings(max_examples=10, deadline=None)
def test_fusion_preserves_tessellation_2d(case):
    b, n0, n1, steps = case
    spec = get_stencil("heat2d")
    lat = make_lattice(spec, (n0, n1), b)
    sched = tess_schedule(spec, (n0, n1), lat, steps, merged=False)
    plan = compile_plan(spec, sched)
    report = sanitize_schedule(spec, plan.as_schedule())
    assert report.ok, report.describe()


@given(st.tuples(
    st.integers(min_value=30, max_value=80),      # n
    st.integers(min_value=1, max_value=10),       # steps
    st.integers(min_value=1, max_value=5),        # chunks
))
@settings(max_examples=15, deadline=None)
def test_fusion_preserves_invariants_on_fusing_schedules(case):
    # naive/spatial schedules are where rectangle fusion actually
    # fires (adjacent slabs of one sweep merge) — the reconstructed
    # schedule must stay sanitizer-clean AND bit-identical
    n, steps, chunks = case
    spec = get_stencil("heat1d")
    sched = naive_schedule(spec, (n,), steps, chunks=chunks)
    plan = compile_plan(spec, sched)
    report = sanitize_schedule(spec, plan.as_schedule())
    assert report.ok, report.describe()
    g = Grid(spec, (n,), init="random", seed=1)
    g2 = g.copy()
    assert np.array_equal(_execute_schedule(spec, g, sched),
                          _execute_plan(plan, g2))


def test_fused_spatial_schedule_stays_clean():
    spec = get_stencil("heat2d")
    sched = spatial_schedule(spec, (36, 36), 5, (10, 10))
    plan = compile_plan(spec, sched)
    assert plan.stats.fused_actions > 0
    report = sanitize_schedule(spec, plan.as_schedule())
    assert report.ok, report.describe()
