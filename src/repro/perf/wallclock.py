"""Wall-clock measurement of real (NumPy) schedule execution.

Used by the pytest-benchmark suite: on this substrate the kernels are
vectorised NumPy region updates rather than compiled C, so absolute
numbers are not comparable to the paper's, but relative costs between
schemes on the *same* substrate are still informative (loop/dispatch
overhead per task, cache behaviour of block traversals).
"""

from __future__ import annotations

import time
from typing import Callable, Tuple

import numpy as np

from repro.runtime.schedule import RegionSchedule, execute_schedule
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


def time_schedule(spec: StencilSpec, schedule: RegionSchedule,
                  seed: int = 0) -> Tuple[float, np.ndarray]:
    """Execute a schedule once on a fresh grid; returns (seconds, out)."""
    if schedule.private_tasks:
        from repro.baselines.overlapped import execute_overlapped as runner
    else:
        runner = execute_schedule
    grid = Grid(spec, schedule.shape, init="random", seed=seed)
    t0 = time.perf_counter()
    out = runner(spec, grid, schedule)
    return time.perf_counter() - t0, out


def time_executor(fn: Callable[[], object]) -> float:
    """Time one invocation of an arbitrary executor closure."""
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
