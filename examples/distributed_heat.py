#!/usr/bin/env python3
"""Distributed-memory tessellation — §4.1 made concrete.

Partitions a Heat-2D grid into slabs across simulated ranks, runs the
tessellation with real per-stage boundary exchanges (validated against
the single-node reference), repeats the run on the elastic *process*
runtime while killing a rank mid-flight, prints the communication
plan, and estimates cluster strong scaling with the α–β network model.

Run:  python examples/distributed_heat.py
"""

import numpy as np

from repro import get_stencil, make_lattice
from repro.api import RunConfig, Session
from repro.bench.report import format_table
from repro.distributed import (
    ClusterSpec,
    ElasticConfig,
    communication_plan,
    simulate_distributed,
)
from repro.runtime import FaultPlan
from repro.distributed.plan import plan_totals
from repro.machine import paper_machine


def main() -> None:
    spec = get_stencil("heat2d")
    shape = (120, 96)
    steps = 24
    b = 4
    ranks = 4
    session = Session(spec)
    config = RunConfig(shape=shape, steps=steps, scheme="tess", b=b,
                       ranks=ranks, backend="distributed", verify=True)

    # 1. run the real message-passing simulation and verify it
    result = session.run(config)
    assert result.ok
    stats = result.stats.comm
    print(f"{ranks} ranks over {shape}, {steps} steps: verified against "
          f"the single-node reference")
    print(f"exchanges: {stats.messages} messages, "
          f"{stats.bytes_sent / 1024:.1f} KiB moved\n")

    # 2. the same run on real rank processes, with a rank killed
    # mid-run: the coordinator respawns it, replays the aborted phase
    # from the committed checkpoints, and the result is bit-identical
    res2 = session.run(
        config, backend="elastic", verify=False,
        fault_plan=FaultPlan.parse(["kill_rank@3/1"]),
        elastic=ElasticConfig(stall_timeout_s=0.6, heartbeat_timeout_s=1.5),
    )
    assert np.array_equal(result.interior, res2.interior)
    print(f"elastic process runtime, kill_rank@3/1 injected: recovered "
          f"bit-identically ({res2.stats.comm.describe_resilience()})\n")

    # 3. the analytic per-stage communication plan
    entries = communication_plan(spec, shape, result.lattice, ranks)
    tot = plan_totals(entries)
    print(f"analytic plan: {tot['messages']} point-to-point transfers "
          f"per phase, {tot['total_bytes'] / 1024:.1f} KiB minimum "
          f"volume (stages with traffic: {tot['stages_with_comm']})\n")

    # 4. cluster strong scaling estimate at paper scale
    big_shape = (2400, 2400)
    big_lat = make_lattice(spec, big_shape, 32, core_widths=(1, 128))
    rows = []
    base = None
    for nodes in (1, 2, 4, 8, 16):
        r = simulate_distributed(spec, big_shape, big_lat, 96,
                                 ClusterSpec(nodes, paper_machine()))
        base = base or r.time_s
        rows.append([nodes, f"{r.gstencils:.1f}",
                     f"{r.comm_fraction * 100:.1f}%",
                     f"{base / r.time_s:.2f}x"])
    print("strong scaling, Heat-2D 2400^2 x 96 on 24-core nodes:")
    print(format_table(["nodes", "GStencil/s", "comm share", "speedup"],
                       rows))


if __name__ == "__main__":
    main()
