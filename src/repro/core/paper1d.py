"""Literal transcription of the paper's 1D artifact code.

The SC'17 artifact description ships a ~20-line C kernel implementing
the merged tessellation for 1D stencils (reproduced in the paper's
appendix).  This module transcribes it line by line — same parameter
names (``bx``, ``bt``, ``ix``, ``xright``, ``nb0``, ``level``), same
loop bounds, same C integer-division semantics — with the innermost
``for (x = xmin; x < xmax; x++) update(t, x)`` loop replaced by one
vectorised region application.

It serves two purposes: fidelity evidence (the generic executors are
validated against it and against the naive reference), and the 1D
kernel used by the Figure 8 benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


def _myabs(a: int, c: int) -> int:
    return abs(a - c)


def run_paper1d(
    spec: StencilSpec,
    grid: Grid,
    bx: int,
    bt: int,
    steps: int,
    on_block=None,
) -> np.ndarray:
    """The artifact's 1D tessellation: ``bx`` block size, ``bt`` depth.

    ``bx`` is the full spatial extent of a merged diamond and ``bt``
    the half-height; the artifact requires ``bx > 2·bt·XSLOPE`` so the
    inter-block stride ``ix`` stays positive.  Returns the interior at
    time ``steps``.
    """
    if spec.ndim != 1:
        raise ValueError("run_paper1d is the 1D artifact code")
    if spec.is_periodic:
        raise ValueError("the artifact implements non-periodic boundaries")
    xslope = spec.slopes[0]
    n_pts = grid.shape[0]
    t_total = steps
    if bx <= 2 * bt * xslope:
        raise ValueError(
            f"bx ({bx}) must exceed 2*bt*XSLOPE ({2 * bt * xslope})"
        )

    # --- literal artifact setup ------------------------------------
    ix = bx + bx - 2 * bt * xslope
    xright = [bx + xslope, bx + xslope - ix // 2]
    nb0 = [
        (n_pts + bx - (xright[0] - xslope) - 1) // ix + 1,
        (n_pts + bx - (xright[1] - xslope) - 1) // ix + 1,
    ]
    level = 0

    # x coordinates below follow the artifact: padded indices in
    # [XSLOPE, N + XSLOPE); regions passed to apply_region are interior.
    tt = -bt
    while tt < t_total:
        for n in range(nb0[level]):
            pts = 0
            for t in range(max(tt, 0), min(tt + 2 * bt, t_total)):
                xmin = max(
                    xslope,
                    xright[level] - bx + n * ix
                    + _myabs(t + 1, tt + bt) * xslope,
                )
                xmax = min(
                    n_pts + xslope,
                    xright[level] + n * ix
                    - _myabs(t + 1, tt + bt) * xslope,
                )
                if xmax <= xmin:
                    continue
                src = grid.at(t)
                dst = grid.at(t + 1)
                region = ((xmin - xslope, xmax - xslope),)
                spec.apply_region(src, dst, region)
                pts += xmax - xmin
            if on_block is not None and pts:
                on_block(tt, level, n, pts)
        level = 1 - level
        tt += bt
    return grid.interior(t_total)
