"""Fault-tolerant execution: injected failures, exact recovery.

The barrier groups that make tessellated schedules parallel are also
consistency points: at every barrier the ping-pong pair is a complete
state.  ``execute_resilient`` checkpoints there, retries failed tasks,
and restores/replays groups on corruption — so a run hit by injected
faults still produces results *bit-identical* to a fault-free run.
The distributed simulator does the same per phase, with a divergence
detector guarding the ghost-band exchanges.

Run: ``PYTHONPATH=src python examples/fault_tolerance.py``
CLI equivalent::

    python -m repro run heat2d --shape 64 64 --steps 12 -b 4 \
        --threads 4 --resilient --inject crash@1/0 --inject corrupt@3
    python -m repro dist heat1d --shape 400 --steps 16 -b 4 --ranks 4 \
        --resilient --inject drop@2/1
"""

import numpy as np

from repro import Grid, get_stencil, make_lattice
from repro.core.schedules import tess_schedule
from repro.distributed import execute_distributed
from repro.runtime import (
    ExecutionError, FaultPlan, FaultSpec, ResiliencePolicy,
    execute_resilient, execute_schedule,
)


def main() -> None:
    spec = get_stencil("heat2d")
    shape, steps, b = (64, 64), 12, 4
    lattice = make_lattice(spec, shape, b)
    sched = tess_schedule(spec, shape, lattice, steps, merged=True)

    ref = execute_schedule(spec, Grid(spec, shape, seed=0), sched).copy()

    # -- shared memory: crash + silent corruption + stall ------------
    plan = FaultPlan([
        FaultSpec("crash", group=1, task=0),            # worker dies
        FaultSpec("corrupt", group=3, task=1),          # silent NaNs
        FaultSpec("stall", group=2, task=0, stall_s=0.05),
    ])
    policy = ResiliencePolicy(task_deadline_s=0.02)
    out, report = execute_resilient(
        spec, Grid(spec, shape, seed=0), sched,
        policy=policy, fault_plan=plan, num_threads=4)
    exact = np.array_equal(ref, out)
    print(f"injected {len(plan.faults)} faults ({plan.describe()})")
    print(f"  {report.describe()}")
    print(f"  recovered bit-identical to fault-free run: {exact}")
    assert exact

    # -- a persistent failure stays loud, not silent -----------------
    dead = FaultPlan([FaultSpec("crash", group=2, task=0, max_hits=10_000)])
    try:
        execute_resilient(spec, Grid(spec, shape, seed=0), sched,
                          fault_plan=dead, num_threads=4)
    except ExecutionError as e:
        print(f"persistent fault -> structured error: {e}")

    # -- distributed: dropped ghost-band exchange --------------------
    spec1 = get_stencil("heat1d")
    shape1, steps1 = (400,), 16
    lat1 = make_lattice(spec1, shape1, b)
    g1 = Grid(spec1, shape1, seed=0)
    base, _ = execute_distributed(spec1, g1.copy(), lat1, steps1, 4)
    dplan = FaultPlan([FaultSpec("drop", group=2, task=1)])
    out1, stats = execute_distributed(
        spec1, g1.copy(), lat1, steps1, 4,
        fault_plan=dplan, resilient=True)
    exact1 = np.array_equal(base, out1)
    print(f"distributed: dropped exchange at stage 2 -> "
          f"{stats.phase_restarts} phase replay(s), "
          f"recovered bit-identical: {exact1}")
    assert exact1


if __name__ == "__main__":
    main()
