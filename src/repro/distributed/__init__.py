"""Distributed-memory tessellation (the paper's §4.1, built out).

    "For distributed memory computers, the clear tessellation scheme
    also enables us to generate a simple data/computation distribution
    and an efficient data communication plan.  However, this is beyond
    the scope of this paper."

This subpackage builds that plan on the simulated substrate:

* :mod:`~repro.distributed.partition` — slab partitioning of the
  lattice and block→rank ownership;
* :mod:`~repro.distributed.exec` — an executable message-passing
  simulation (per-rank arrays, post-stage boundary-band exchange)
  validated against the naive reference — if the communication plan
  under-exchanged, results would diverge;
* :mod:`~repro.distributed.plan` — the analytic per-stage
  communication-volume plan derived from the real schedules;
* :mod:`~repro.distributed.model` — a cluster cost model
  (per-node machine × latency/bandwidth network) on top of it;
* :mod:`~repro.distributed.transport` /
  :mod:`~repro.distributed.worker` /
  :mod:`~repro.distributed.elastic` — the elastic *process* runtime:
  real rank processes, checksummed boundary-band exchanges with
  timeout/backoff retransmits, heartbeat watchdog, and rank-crash
  recovery from phase checkpoints (see ``docs/distributed.md``).
"""

from repro.distributed.partition import SlabPartition, build_ownership
from repro.distributed.exec import CommStats, execute_distributed
from repro.distributed.plan import communication_plan, CommPlanEntry
from repro.distributed.model import ClusterSpec, simulate_distributed
from repro.distributed.transport import RetryPolicy
from repro.distributed.elastic import ElasticConfig, execute_elastic

__all__ = [
    "SlabPartition",
    "build_ownership",
    "CommStats",
    "execute_distributed",
    "communication_plan",
    "CommPlanEntry",
    "ClusterSpec",
    "simulate_distributed",
    "RetryPolicy",
    "ElasticConfig",
    "execute_elastic",
]
