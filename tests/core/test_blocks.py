"""Block enumeration & per-step rectangles vs the pointwise masks.

The key invariant: at every (stage, local step), the union of all
blocks' rectangles must be exactly the mask
``{x : #{j : a_j(x) ≥ b - s} == stage}`` — blockwise and pointwise
views of the tessellation coincide, with no overlap between blocks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    TessBlock,
    build_phase_plan,
    enumerate_stage_blocks,
)
from repro.core.pointwise import _stage_count_array
from repro.core.profiles import AxisProfile, TessLattice


def lattice_cases():
    return [
        TessLattice.uniform((20,), 3),
        TessLattice.uniform((21, 17), 2),
        TessLattice.coarse((25, 19), 3, core_widths=(4, 2)),
        TessLattice.coarse((14, 13, 11), 2, core_widths=(2, 1, 3)),
        TessLattice((AxisProfile.uniform(18, 2),
                     AxisProfile.uncut(15, 2))),
        TessLattice((AxisProfile.stretched(23, 3),
                     AxisProfile.uniform(20, 3))),
        TessLattice((AxisProfile.uniform(30, 3, sigma=2),)),
    ]


def _mask_from_blocks(lattice, stage, s):
    slopes = tuple(p.sigma for p in lattice.profiles)
    shape = lattice.shape
    mask = np.zeros(shape, dtype=np.int32)
    for blk in enumerate_stage_blocks(lattice, stage, slopes):
        region = blk.region_at(s, lattice.b, slopes, shape)
        idx = tuple(slice(lo, hi) for lo, hi in region)
        if all(hi > lo for lo, hi in region):
            mask[idx] += 1
    return mask


@pytest.mark.parametrize("lattice", lattice_cases(),
                         ids=lambda l: f"{l.shape}-b{l.b}")
class TestBlockMaskConsistency:
    def test_blocks_cover_exactly_the_stage_masks(self, lattice):
        b = lattice.b
        d = lattice.ndim
        a_vecs = lattice.distance_arrays()
        for stage in range(d + 1):
            for s in range(b):
                count = _stage_count_array(a_vecs, b, s)
                want = (count == stage)
                got = _mask_from_blocks(lattice, stage, s)
                assert got.max(initial=0) <= 1, (
                    f"blocks overlap at stage {stage} step {s}"
                )
                assert np.array_equal(got.astype(bool), want), (
                    f"coverage mismatch at stage {stage} step {s}"
                )

    def test_stage_masks_partition_each_step(self, lattice):
        b = lattice.b
        d = lattice.ndim
        a_vecs = lattice.distance_arrays()
        for s in range(b):
            total = np.zeros(lattice.shape, dtype=np.int32)
            for stage in range(d + 1):
                total += (_stage_count_array(a_vecs, b, s) == stage)
            assert np.array_equal(total, np.ones_like(total))


class TestTessBlock:
    def test_region_growth_shrink(self):
        blk = TessBlock(stage=1, glued=(0,), base=((10, 11), (4, 6)))
        b, slopes, shape = 3, (1, 1), (30, 30)
        r0 = blk.region_at(0, b, slopes, shape)
        r2 = blk.region_at(2, b, slopes, shape)
        assert r0 == ((10, 11), (2, 8))   # glued tight, ending dilated
        assert r2 == ((8, 13), (4, 6))    # glued dilated, ending tight

    def test_region_clipping(self):
        blk = TessBlock(stage=1, glued=(0,), base=((0, 1), (0, 2)))
        r = blk.region_at(2, 3, (1, 1), (10, 10))
        assert r[0][0] == 0 and r[1][0] == 0

    def test_region_bad_step(self):
        blk = TessBlock(stage=0, glued=(), base=((0, 1),))
        with pytest.raises(ValueError):
            blk.region_at(3, 3, (1,), (10,))
        with pytest.raises(ValueError):
            blk.region_at(-1, 3, (1,), (10,))

    def test_bounding_box_contains_all_steps(self):
        blk = TessBlock(stage=1, glued=(1,), base=((4, 6), (9, 10)))
        b, slopes, shape = 4, (1, 2), (40, 40)
        box = blk.bounding_box(b, slopes, shape)
        for s in range(b):
            for (lo, hi), (blo, bhi) in zip(
                blk.region_at(s, b, slopes, shape), box
            ):
                assert blo <= lo and hi <= bhi

    def test_total_points_counts_all_steps(self):
        blk = TessBlock(stage=0, glued=(), base=((5, 6),))
        # ending dim: widths 2(b-1-s)+1 for s=0..b-1
        assert blk.total_points(3, (1,), (20,)) == 5 + 3 + 1


class TestPhasePlan:
    def test_stage_count(self):
        lat = TessLattice.uniform((15, 15), 2)
        plan = build_phase_plan(lat, (1, 1))
        assert len(plan.stages) == 3
        assert plan.num_barriers() == 3
        assert plan.b == 2

    def test_uncut_axis_empties_low_stages(self):
        lat = TessLattice((AxisProfile.uniform(16, 2),
                           AxisProfile.uncut(10, 2)))
        plan = build_phase_plan(lat, (1, 1))
        assert len(plan.stages[0].blocks) == 0  # no all-ending blocks
        assert len(plan.stages[1].blocks) > 0

    def test_num_blocks_positive(self):
        lat = TessLattice.uniform((30,), 3)
        plan = build_phase_plan(lat, (1,))
        assert plan.num_blocks() > 0
