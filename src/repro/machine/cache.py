"""Set-associative LRU cache simulator.

A classic trace-driven simulator: addresses are mapped to sets by the
line index, each set keeps true-LRU order, writes allocate and dirty
lines write back on eviction.  :class:`CacheHierarchy` stacks levels
(inclusive, demand-fill) and reports per-level hit/miss counts plus
the memory traffic at the bottom — the quantity the paper's Figure 12
plots and the analytic model in :mod:`repro.machine.model` estimates.

The simulator is exact but slow (Python per-line bookkeeping); it is
used on *small* instances to sanity-check the analytic traffic
estimates, not inside the figure benchmarks themselves.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """One cache level with true-LRU replacement.

    Parameters
    ----------
    size_bytes: total capacity; must be a multiple of ``line * ways``.
    line_bytes: cache line size.
    ways: associativity (``0`` means fully associative).
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8):
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache and line sizes must be positive")
        lines = size_bytes // line_bytes
        if lines == 0:
            raise ValueError("cache smaller than one line")
        if ways == 0 or ways > lines:
            ways = lines
        if lines % ways != 0:
            raise ValueError(
                f"{size_bytes}B / {line_bytes}B lines not divisible into "
                f"{ways}-way sets"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = lines // ways
        # per-set OrderedDict: line_tag -> dirty flag, LRU order = insertion
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Touch one address; returns True on hit.

        On a miss the line is allocated (write-allocate) and the LRU
        victim evicted (counted; dirty victims count as writebacks).
        """
        set_idx, tag = self._locate(addr)
        s = self._sets[set_idx]
        if tag in s:
            dirty = s.pop(tag)
            s[tag] = dirty or is_write
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(s) >= self.ways:
            _, victim_dirty = s.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
        s[tag] = is_write
        return False

    def flush(self) -> int:
        """Evict everything; returns the number of dirty writebacks."""
        wb = 0
        for s in self._sets:
            for dirty in s.values():
                if dirty:
                    wb += 1
            s.clear()
        self.stats.writebacks += wb
        return wb

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class CacheHierarchy:
    """Inclusive multi-level hierarchy with demand fill.

    ``levels`` are ordered nearest-first (L1, L2, LLC).  An access
    probes levels in order; the first hit stops the walk, a full miss
    counts as memory traffic (one line read; evicted dirty lines at
    the last level count as write traffic).
    """

    def __init__(self, levels: Iterable[SetAssociativeCache]):
        self.levels = list(levels)
        if not self.levels:
            raise ValueError("hierarchy needs at least one level")
        line = {l.line_bytes for l in self.levels}
        if len(line) != 1:
            raise ValueError("all levels must share one line size")
        self.line_bytes = line.pop()
        self.mem_reads = 0   # lines fetched from memory
        self.mem_writes = 0  # dirty lines written back to memory

    def access(self, addr: int, is_write: bool = False) -> int:
        """Returns the level index that hit (``len(levels)`` = memory)."""
        for i, level in enumerate(self.levels):
            wb_before = level.stats.writebacks
            hit = level.access(addr, is_write=is_write)
            if i == len(self.levels) - 1:
                self.mem_writes += level.stats.writebacks - wb_before
            if hit:
                return i
        self.mem_reads += 1
        return len(self.levels)

    def flush(self) -> None:
        for i, level in enumerate(self.levels):
            wb = level.flush()
            if i == len(self.levels) - 1:
                self.mem_writes += wb

    @property
    def memory_traffic_bytes(self) -> int:
        return (self.mem_reads + self.mem_writes) * self.line_bytes
