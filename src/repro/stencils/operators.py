"""Stencil operators — the code that applies one time step to a region.

Two operator families cover the paper's whole benchmark suite:

* :class:`LinearStencilOperator` — weighted sum over a fixed set of
  neighbour offsets (all the heat and N-point kernels);
* :class:`GameOfLifeOperator` — the non-linear Conway rule (the paper's
  "game of life" box-stencil benchmark, Fig. 9).

Operators are deliberately dumb about tiling: they update one
hyper-rectangular region of a halo-padded array and know nothing about
time tiles, stages or blocks.  That separation mirrors the paper's
OpenBLAS-inspired design (§1): a simple parallel framework of
lightweight loop conditions around a plain in-core kernel.
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

import numpy as np

Offset = Tuple[int, ...]


def _region_slices(
    region: Sequence[Tuple[int, int]],
    halo: Sequence[int],
    offset: Sequence[int],
) -> Tuple[slice, ...]:
    """Slices into a padded array for ``region`` shifted by ``offset``."""
    return tuple(
        slice(lo + h + o, hi + h + o)
        for (lo, hi), h, o in zip(region, halo, offset)
    )


class StencilOperator(abc.ABC):
    """Applies one Jacobi time step to a region of a padded array."""

    #: Neighbour offsets read per update (must include the centre if read).
    offsets: Tuple[Offset, ...]

    def __init__(self, offsets: Sequence[Offset]):
        offs = tuple(tuple(int(c) for c in o) for o in offsets)
        if not offs:
            raise ValueError("an operator needs at least one offset")
        ndims = {len(o) for o in offs}
        if len(ndims) != 1:
            raise ValueError("all offsets must have the same rank")
        if len(set(offs)) != len(offs):
            raise ValueError("duplicate neighbour offsets")
        self.offsets = offs

    @property
    def ndim(self) -> int:
        return len(self.offsets[0])

    @property
    def slopes(self) -> Tuple[int, ...]:
        """Max |offset| per dimension — the dependence-cone slope."""
        return tuple(
            max(abs(o[j]) for o in self.offsets) for j in range(self.ndim)
        )

    @property
    @abc.abstractmethod
    def dtype(self) -> np.dtype:
        """Grid element dtype."""

    @property
    @abc.abstractmethod
    def flops_per_point(self) -> int:
        """Operations per point update (used by the machine model)."""

    @abc.abstractmethod
    def apply(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        region: Sequence[Tuple[int, int]],
        halo: Sequence[int],
    ) -> None:
        """``dst[region] = step(src)`` on halo-padded ``src``/``dst``."""

    @abc.abstractmethod
    def apply_wrapped(self, src: np.ndarray) -> np.ndarray:
        """Full-grid periodic step on an *unpadded* array (via wrap)."""


class LinearStencilOperator(StencilOperator):
    """Weighted-sum stencil: ``dst[x] = sum_k c_k * src[x + off_k]``.

    Parameters
    ----------
    offsets:
        Neighbour offsets (d-tuples).
    coeffs:
        One weight per offset.
    dtype:
        Grid dtype, default float64.
    """

    def __init__(
        self,
        offsets: Sequence[Offset],
        coeffs: Sequence[float],
        dtype: np.dtype | str = np.float64,
    ):
        super().__init__(offsets)
        if len(coeffs) != len(self.offsets):
            raise ValueError(
                f"{len(coeffs)} coefficients for {len(self.offsets)} offsets"
            )
        self.coeffs = tuple(float(c) for c in coeffs)
        self._dtype = np.dtype(dtype)

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def flops_per_point(self) -> int:
        # one multiply per tap plus (taps - 1) adds
        return 2 * len(self.offsets) - 1

    def apply(self, src, dst, region, halo) -> None:
        out = dst[_region_slices(region, halo, (0,) * self.ndim)]
        first = True
        for off, c in zip(self.offsets, self.coeffs):
            view = src[_region_slices(region, halo, off)]
            if first:
                np.multiply(view, c, out=out)
                first = False
            else:
                # out += c * view without a second full temporary
                out += view * c

    def apply_wrapped(self, src: np.ndarray) -> np.ndarray:
        acc = np.zeros_like(src)
        for off, c in zip(self.offsets, self.coeffs):
            acc += c * np.roll(src, shift=[-o for o in off], axis=range(self.ndim))
        return acc


def _neighbor_count(src_views) -> np.ndarray:
    acc = src_views[0].astype(np.uint8).copy()
    for v in src_views[1:]:
        acc += v
    return acc


class GameOfLifeOperator(StencilOperator):
    """Conway's Game of Life as a 2D 9-point box stencil on uint8 grids.

    The rule is the standard B3/S23: a dead cell with exactly three live
    neighbours is born; a live cell with two or three live neighbours
    survives.  The paper runs it as one of its three box-stencil
    benchmarks; being non-linear it exercises the operator abstraction
    beyond weighted sums.
    """

    def __init__(self):
        offsets = [
            (i, j) for i in (-1, 0, 1) for j in (-1, 0, 1)
        ]
        super().__init__(offsets)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.uint8)

    @property
    def flops_per_point(self) -> int:
        # 8 neighbour adds + rule evaluation, matching a tuned C kernel
        return 12

    def apply(self, src, dst, region, halo) -> None:
        centre = src[_region_slices(region, halo, (0, 0))]
        neigh = [
            src[_region_slices(region, halo, off)]
            for off in self.offsets
            if off != (0, 0)
        ]
        n = _neighbor_count(neigh)
        out = dst[_region_slices(region, halo, (0, 0))]
        np.copyto(out, ((n == 3) | ((centre == 1) & (n == 2))).astype(np.uint8))

    def apply_wrapped(self, src: np.ndarray) -> np.ndarray:
        n = np.zeros(src.shape, dtype=np.uint8)
        for off in self.offsets:
            if off == (0, 0):
                continue
            n += np.roll(src, shift=[-o for o in off], axis=(0, 1))
        return ((n == 3) | ((src == 1) & (n == 2))).astype(np.uint8)


def star_offsets(ndim: int, order: int) -> Tuple[Offset, ...]:
    """Offsets of a star stencil: centre plus ±1..±order along each axis."""
    offs = [(0,) * ndim]
    for j in range(ndim):
        for k in range(1, order + 1):
            for sgn in (-1, 1):
                o = [0] * ndim
                o[j] = sgn * k
                offs.append(tuple(o))
    return tuple(offs)


def box_offsets(ndim: int, order: int = 1) -> Tuple[Offset, ...]:
    """Offsets of a box stencil: the full ``(±order..0)^d`` neighbourhood."""
    ranges = [range(-order, order + 1)] * ndim
    out = []

    def rec(prefix):
        if len(prefix) == ndim:
            out.append(tuple(prefix))
            return
        for v in ranges[len(prefix)]:
            rec(prefix + [v])

    rec([])
    return tuple(out)
