"""HTTP front: routes, typed error taxonomy, client helpers."""

import json
import time
import urllib.request

import numpy as np
import pytest

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.runtime.errors import JobNotFound, QueueSaturated
from repro.service import (
    JobStore,
    ServiceFront,
    Supervisor,
    SupervisorConfig,
    cancel_job,
    job_result,
    job_status,
    server_metrics,
    submit_job,
)

pytestmark = pytest.mark.service

CFG = {"shape": [40], "steps": 12, "backend": "serial"}


@pytest.fixture
def served(tmp_path):
    with JobStore(str(tmp_path / "store"), fsync=False) as store:
        sup = Supervisor(store, SupervisorConfig(workers=1))
        sup.start()
        try:
            with ServiceFront(sup, port=0) as front:
                yield front.url, sup, store
        finally:
            sup.stop()


def test_submit_poll_fetch_roundtrip(served):
    url, sup, _ = served
    out = submit_job(url, "heat1d", CFG)
    assert out["created"] and out["state"] == "queued"
    sup.wait(out["job_id"], timeout=60)
    st = job_status(url, out["job_id"])
    assert st["state"] == "done" and st["attempts"] == 1
    res = job_result(url, out["job_id"])
    direct = Session(get_stencil("heat1d")).run(RunConfig.from_json(CFG))
    np.testing.assert_array_equal(res["interior"], direct.interior)
    assert res["stats"]["steps"] == 12


def test_resubmit_deduplicates_over_http(served):
    url, sup, _ = served
    a = submit_job(url, "heat1d", CFG)
    sup.wait(a["job_id"], timeout=60)
    b = submit_job(url, "heat1d", CFG)
    assert not b["created"] and b["job_id"] == a["job_id"]


def test_unknown_job_maps_to_typed_404(served):
    url, _, _ = served
    with pytest.raises(JobNotFound):
        job_status(url, "job-unknown")
    with pytest.raises(JobNotFound):
        job_result(url, "job-unknown")
    with pytest.raises(JobNotFound):  # unknown route, same verdict
        job_status(url, "nested/route")


def test_result_before_done_is_409(tmp_path):
    with JobStore(str(tmp_path / "store"), fsync=False) as store:
        sup = Supervisor(store, SupervisorConfig(workers=1))
        # supervisor NOT started: the job provably stays queued
        with ServiceFront(sup, port=0) as front:
            out = submit_job(front.url, "heat1d", CFG)
            with pytest.raises(RuntimeError, match="not done"):
                job_result(front.url, out["job_id"])


def test_saturation_maps_to_typed_429(tmp_path):
    with JobStore(str(tmp_path / "store"), fsync=False) as store:
        sup = Supervisor(store, SupervisorConfig(workers=1,
                                                 queue_depth=1))
        # supervisor NOT started: the queue fills and stays full
        with ServiceFront(sup, port=0) as front:
            submit_job(front.url, "heat1d", CFG)
            with pytest.raises(QueueSaturated):
                submit_job(front.url, "heat1d", dict(CFG, steps=13))


def test_cancel_over_http(tmp_path):
    with JobStore(str(tmp_path / "store"), fsync=False) as store:
        sup = Supervisor(store, SupervisorConfig(workers=1))
        with ServiceFront(sup, port=0) as front:
            out = submit_job(front.url, "heat1d", CFG)
            res = cancel_job(front.url, out["job_id"])
            assert res["state"] == "cancelled"


def test_metrics_healthz_and_listing(served):
    url, sup, _ = served
    out = submit_job(url, "heat1d", CFG)
    sup.wait(out["job_id"], timeout=60)
    m = server_metrics(url)
    assert m["store"]["jobs"]["done"] == 1
    assert m["queue"]["capacity"] == 64
    assert "recovery" in m
    assert m["state"] == "serving"
    assert [w["worker"] for w in m["workers"]] == [0]
    # the worker clears its assignment just *after* the result is
    # journaled, so allow that last handoff a moment to land
    deadline = time.monotonic() + 10
    while True:
        with urllib.request.urlopen(f"{url}/healthz", timeout=10) as r:
            health = json.loads(r.read())
        (w,) = health["workers"]
        if w["job_id"] is None or time.monotonic() > deadline:
            break
        time.sleep(0.02)
    assert health["ok"] and health["state"] == "serving"
    assert health["isolation"] == sup.config.isolation
    assert health["queue"]["capacity"] == 64
    assert w["worker"] == 0 and w["job_id"] is None
    assert w["heartbeat_age_s"] is not None
    with urllib.request.urlopen(f"{url}/jobs", timeout=10) as r:
        jobs = json.loads(r.read())["jobs"]
    assert [j["state"] for j in jobs] == ["done"]


def test_draining_maps_to_typed_503(served):
    import urllib.error

    from repro.runtime.errors import ServiceDraining

    url, sup, _ = served
    sup.begin_drain()
    with pytest.raises(ServiceDraining):
        submit_job(url, "heat1d", CFG)
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(f"{url}/healthz", timeout=10)
    assert err.value.code == 503
    health = json.loads(err.value.read())
    assert health["state"] == "draining" and not health["ok"]
    # reads still answer while draining
    assert server_metrics(url)["state"] == "draining"


def test_malformed_submission_is_400(served):
    url, _, _ = served
    with pytest.raises(ValueError, match="kernel"):
        submit_job(url, "", CFG)
    with pytest.raises(ValueError):  # unknown RunConfig field
        submit_job(url, "heat1d", {"no_such_knob": 1})
