"""Closed-form performance models.

These are the back-of-envelope laws the tiling literature (and the
paper's §1/§5.2 analysis) relies on:

* a naive sweep streams the whole grid every step — traffic
  ``≈ 3 · itemsize · N^d`` bytes per step (read + write +
  write-allocate);
* a depth-``b`` time tile whose blocks fit in cache reads and writes
  each point once per *phase* — traffic smaller by ``Θ(b)``;
* the machine balance (bytes/flop it can feed) against a kernel's
  arithmetic intensity decides compute- vs bandwidth-bound.

The task-level model in :mod:`repro.machine.model` applies the same
reasoning per task; these functions give the aggregate closed forms
used for cross-checking and for the Figure 12 analysis.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.machine.spec import MachineSpec
from repro.stencils.spec import StencilSpec


def grid_points(shape: Sequence[int]) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n


def arithmetic_intensity(spec: StencilSpec, cached: bool = True) -> float:
    """Flops per byte of memory traffic for one point update.

    ``cached=True`` assumes neighbouring loads hit in cache (the
    streaming regime: 3 × itemsize bytes per point); ``cached=False``
    charges every neighbour load (the worst case).
    """
    itemsize = np.dtype(spec.dtype).itemsize
    if cached:
        bytes_per_point = 3.0 * itemsize
    else:
        bytes_per_point = (spec.num_neighbors + 2.0) * itemsize
    return spec.flops_per_point / bytes_per_point


def machine_balance(machine: MachineSpec, cores: int) -> float:
    """Flops the machine can execute per byte it can stream."""
    return (cores * machine.flop_rate) / machine.mem_bw_for(cores)


def naive_traffic_bytes(spec: StencilSpec, shape: Sequence[int],
                        steps: int) -> float:
    """Memory traffic of ``steps`` naive sweeps (grid ≫ cache)."""
    itemsize = np.dtype(spec.dtype).itemsize
    return 3.0 * itemsize * grid_points(shape) * steps


def timetile_traffic_bytes(spec: StencilSpec, shape: Sequence[int],
                           steps: int, b: int) -> float:
    """Memory traffic with depth-``b`` cache-resident time tiles.

    Each phase of ``b`` steps touches every point once for reading and
    once for writing back (2 × itemsize per point per phase) — the
    ``Θ(b)``-fold reduction temporal tiling buys, matching the similar
    cache complexity the paper reports for its scheme and Pluto
    (Fig. 12).
    """
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    itemsize = np.dtype(spec.dtype).itemsize
    phases = math.ceil(steps / b)
    return 2.0 * itemsize * grid_points(shape) * phases


def roofline_time_s(machine: MachineSpec, cores: int, flops: float,
                    traffic_bytes: float) -> float:
    """Roofline lower bound on execution time."""
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    compute = flops / (cores * machine.flop_rate)
    memory = traffic_bytes / machine.mem_bw_for(cores)
    return max(compute, memory)
